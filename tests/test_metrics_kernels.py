"""Vectorized metric kernels: equivalence, fallbacks, pickling, cache.

The kernels must be drop-in numerically identical to the reference
``bleu``/``chrf`` scorers (property-tested to 1e-9 across unicode,
empty and whitespace-only inputs and every smoothing method),
``score_batch`` must be element-wise identical to per-completion
scoring, interned vocabularies must survive pickling into spawned
ScoringPool workers, and the content-hash compile cache must respect
``REPRO_COMPILE_CACHE``.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scorers import CodeSimilarityScorer, Score
from repro.metrics import bleu, chrf
from repro.metrics.compiled import (
    bleu_compiled,
    chrf_compiled,
    compile_reference,
)
from repro.metrics.kernels import (
    bleu_kernel,
    bleu_kernel_batch,
    chrf_kernel,
    chrf_kernel_batch,
    kernels_enabled,
    score_batch,
)
from repro.runtime import ScoringPool

ascii_text = st.text(
    alphabet=st.characters(codec="ascii", exclude_categories=("Cc", "Cs")),
    min_size=0,
    max_size=200,
)
unicode_text = st.text(
    alphabet=st.characters(exclude_categories=("Cs",)),
    min_size=0,
    max_size=120,
)
word_text = st.lists(
    st.text(alphabet="abcdefgh.,-0123456789", min_size=1, max_size=6),
    min_size=1,
    max_size=40,
).map(" ".join)

SMOOTHING = ["exp", "floor", "add-k", "none"]
EDGE_CASES = [
    "",
    " ",
    "   ",
    "\n\n",
    "\t \n",
    "x",
    "engine.put(var, data)",
    "ünïcode é 世界 🎉",
    "\ud800 lone surrogate",
    "a" * 300,
]


class TestBleuKernelEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(hyp=ascii_text, ref=word_text, smooth=st.sampled_from(SMOOTHING))
    def test_matches_reference_bleu(self, hyp, ref, smooth):
        expected = bleu(hyp, ref, smooth_method=smooth)
        got = bleu_kernel(hyp, ref, smooth_method=smooth)
        assert got == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(hyp=unicode_text, ref=unicode_text)
    def test_matches_on_unicode(self, hyp, ref):
        assert bleu_kernel(hyp, ref) == pytest.approx(bleu(hyp, ref), abs=1e-9)

    @pytest.mark.parametrize("hyp", EDGE_CASES)
    @pytest.mark.parametrize("ref", EDGE_CASES)
    def test_edge_case_pairs_bit_equal_to_compiled(self, hyp, ref):
        # the kernels share _compute_score with the compiled path, so
        # equality here is exact, not approximate
        assert bleu_kernel(hyp, ref) == bleu_compiled(hyp, ref)

    @settings(max_examples=30, deadline=None)
    @given(
        hyp=word_text,
        ref=word_text,
        smooth=st.sampled_from(["floor", "add-k"]),
        value=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    )
    def test_matches_with_explicit_smooth_values(self, hyp, ref, smooth, value):
        expected = bleu(hyp, ref, smooth_method=smooth, smooth_value=value)
        got = bleu_kernel(hyp, ref, smooth_method=smooth, smooth_value=value)
        assert got == pytest.approx(expected, abs=1e-9)

    def test_unknown_smoothing_rejected(self):
        from repro.errors import MetricError

        with pytest.raises(MetricError, match="smoothing"):
            bleu_kernel("a", "a", smooth_method="nope")

    def test_accepts_precompiled_object(self):
        ref = compile_reference("engine.put(var, data)")
        assert bleu_kernel("engine.put(var, data)", ref) == pytest.approx(100.0)


class TestChrfKernelEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(hyp=ascii_text, ref=word_text)
    def test_matches_reference_chrf(self, hyp, ref):
        assert chrf_kernel(hyp, ref) == pytest.approx(chrf(hyp, ref), abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(hyp=unicode_text, ref=unicode_text)
    def test_matches_on_unicode(self, hyp, ref):
        assert chrf_kernel(hyp, ref) == pytest.approx(chrf(hyp, ref), abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(hyp=unicode_text, ref=unicode_text, order=st.integers(1, 8))
    def test_matches_across_char_orders(self, hyp, ref, order):
        expected = chrf(hyp, ref, char_order=order)
        got = chrf_kernel(hyp, ref, char_order=order)
        assert got == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(hyp=word_text, ref=word_text)
    def test_matches_with_whitespace_kept(self, hyp, ref):
        expected = chrf(hyp, ref, remove_whitespace=False)
        got = chrf_kernel(hyp, ref, remove_whitespace=False)
        assert got == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("hyp", EDGE_CASES)
    @pytest.mark.parametrize("ref", EDGE_CASES)
    def test_edge_case_pairs_bit_equal_to_compiled(self, hyp, ref):
        assert chrf_kernel(hyp, ref) == chrf_compiled(hyp, ref)


class TestKernelFallbacks:
    def test_env_escape_hatch_disables_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRIC_KERNELS", "0")
        assert not kernels_enabled()
        # disabled kernels route through the compiled path: same scores
        assert bleu_kernel("a b c", "a b d") == bleu_compiled("a b c", "a b d")
        assert chrf_kernel("a b c", "a b d") == chrf_compiled("a b c", "a b d")

    def test_char_code_overflow_falls_back_to_compiled(self):
        # >1290 unique codepoints makes base**6 overflow the packed-code
        # limit; the reference memoizes "unsupported" and the score is
        # still exactly the compiled one
        ref = compile_reference("".join(chr(cp) for cp in range(0x4E00, 0x5380)))
        hyp = "".join(chr(cp) for cp in range(0x4E00, 0x4E40))
        assert chrf_kernel(hyp, ref) == chrf_compiled(hyp, ref)
        assert ref._kernels[("char", 6, True)] is False
        # BLEU's token side is unaffected (few unique tokens)
        assert bleu_kernel(hyp, ref) == bleu_compiled(hyp, ref)

    def test_kernel_built_once_per_reference(self):
        ref = compile_reference("alpha beta gamma alpha")
        bleu_kernel("alpha beta", ref)
        kernel = ref._kernels[("token", 4)]
        bleu_kernel("gamma delta", ref)
        assert ref._kernels[("token", 4)] is kernel

    def test_scoring_does_not_pollute_reference_state(self):
        ref = compile_reference("alpha beta gamma")
        bleu_kernel("delta epsilon", ref)
        before = {key: kern for key, kern in ref._kernels.items()}
        bleu_kernel("zeta eta theta", ref)
        chrf_kernel("iota kappa", ref)
        for key, kern in before.items():
            assert ref._kernels[key] is kern


class TestBatchKernels:
    @settings(max_examples=40, deadline=None)
    @given(
        hyps=st.lists(unicode_text, max_size=8),
        ref=unicode_text,
        smooth=st.sampled_from(SMOOTHING),
    )
    def test_bleu_batch_elementwise_equals_single(self, hyps, ref, smooth):
        batch = bleu_kernel_batch(hyps, ref, smooth_method=smooth)
        assert batch == [
            bleu_kernel(hyp, ref, smooth_method=smooth) for hyp in hyps
        ]

    @settings(max_examples=40, deadline=None)
    @given(hyps=st.lists(unicode_text, max_size=8), ref=unicode_text)
    def test_chrf_batch_elementwise_equals_single(self, hyps, ref):
        assert chrf_kernel_batch(hyps, ref) == [
            chrf_kernel(hyp, ref) for hyp in hyps
        ]

    def test_batch_on_edge_case_group(self):
        for ref in EDGE_CASES:
            assert bleu_kernel_batch(EDGE_CASES, ref) == [
                bleu_kernel(hyp, ref) for hyp in EDGE_CASES
            ]
            assert chrf_kernel_batch(EDGE_CASES, ref) == [
                chrf_kernel(hyp, ref) for hyp in EDGE_CASES
            ]

    def test_empty_group(self):
        assert bleu_kernel_batch([], "reference") == []
        assert chrf_kernel_batch([], "reference") == []

    def test_batch_falls_back_when_kernels_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRIC_KERNELS", "0")
        hyps = ["a b c", "a b d", ""]
        assert bleu_kernel_batch(hyps, "a b c") == [
            bleu_compiled(hyp, "a b c") for hyp in hyps
        ]
        assert chrf_kernel_batch(hyps, "a b c") == [
            chrf_compiled(hyp, "a b c") for hyp in hyps
        ]

    def test_boundary_ngrams_never_leak_across_hypotheses(self):
        # "ab" + "cd" as a group must not manufacture the cross-boundary
        # bigram "bc" that a naive concatenation would contain
        ref = "abcd"
        assert chrf_kernel_batch(["ab", "cd"], ref) == [
            chrf_kernel("ab", ref),
            chrf_kernel("cd", ref),
        ]
        assert bleu_kernel_batch(["w x", "y z"], "w x y z") == [
            bleu_kernel("w x", "w x y z"),
            bleu_kernel("y z", "w x y z"),
        ]


class TestScoreBatch:
    COMPLETIONS = [
        "engine.put(var, data)",
        "engine.get(var)",
        "",
        "   \n",
        "completely unrelated text",
        "engine.put(var, data)",  # duplicate: must score identically
    ]
    TARGET = "engine.put(var, data)"

    def test_batch_identical_to_single_calls(self):
        scorer = CodeSimilarityScorer()
        batch = score_batch(self.COMPLETIONS, self.TARGET, scorer)
        single = [scorer(c, self.TARGET) for c in self.COMPLETIONS]
        assert batch == single

    def test_batch_on_plain_callable_scorer(self):
        def scorer(completion: str, target: str) -> Score:
            return Score(values={"len": float(len(completion))}, answer=completion)

        batch = score_batch(self.COMPLETIONS, self.TARGET, scorer)
        assert [s["len"] for s in batch] == [float(len(c)) for c in self.COMPLETIONS]

    def test_empty_batch(self):
        assert score_batch([], self.TARGET, CodeSimilarityScorer()) == []

    @settings(max_examples=30, deadline=None)
    @given(completions=st.lists(unicode_text, max_size=6), target=unicode_text)
    def test_batch_matches_singles_on_random_inputs(self, completions, target):
        scorer = CodeSimilarityScorer()
        batch = score_batch(completions, target, scorer)
        assert batch == [scorer(c, target) for c in completions]


class TestKernelPickling:
    def test_compiled_reference_with_kernels_round_trips(self):
        ref = compile_reference("engine.put(var, data) # pickled")
        bleu_kernel("engine.put(var, data)", ref)
        chrf_kernel("engine.put(var, data)", ref)
        clone = pickle.loads(pickle.dumps(ref))
        # the interned vocabularies travelled with the object...
        assert set(clone._kernels) == set(ref._kernels)
        # ...and score identically on both sides of the round trip
        for hyp in ("engine.put(var, data)", "engine.get(var)", ""):
            assert bleu_kernel(hyp, clone) == bleu_kernel(hyp, ref)
            assert chrf_kernel(hyp, clone) == chrf_kernel(hyp, ref)

    def test_interned_vocabs_survive_into_spawned_workers(self):
        """Acceptance: batch scores from a spawned ScoringPool process are
        bit-identical to inline kernel scoring."""
        scorer = CodeSimilarityScorer()
        completions = TestScoreBatch.COMPLETIONS
        target = TestScoreBatch.TARGET
        inline = [scorer(c, target) for c in completions]
        with ScoringPool(max_workers=1) as pool:
            handles = pool.submit_many(scorer, completions, target)
            pooled = [handle.result() for handle in handles]
        assert pooled == inline


class TestCompileCacheEnv:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        compile_reference.cache_clear()
        yield
        compile_reference.cache_clear()

    def test_content_hash_shares_one_object(self):
        assert compile_reference("same text") is compile_reference("same text")
        assert compile_reference.cache_len() == 1

    def test_capacity_evicts_least_recent(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "2")
        first = compile_reference("ref one")
        compile_reference("ref two")
        compile_reference("ref three")  # evicts "ref one"
        assert compile_reference.cache_len() == 2
        assert compile_reference("ref one") is not first

    def test_zero_capacity_disables_caching(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        a = compile_reference("uncached")
        b = compile_reference("uncached")
        assert a is not b
        assert compile_reference.cache_len() == 0

    def test_garbage_env_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "not-a-number")
        assert compile_reference("still works") is compile_reference("still works")
