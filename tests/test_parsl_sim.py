"""Parsl substrate: apps, futures, DFK, executors, validator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, WorkflowError
from repro.workflows.parsl_sim import (
    Config,
    File,
    HighThroughputExecutor,
    ThreadPoolExecutor,
    bash_app,
    clear,
    dfk,
    load,
    python_app,
    validate_task_code,
)


@python_app
def double(x):
    return 2 * x


@python_app
def add(a, b):
    return a + b


class TestApps:
    def test_app_returns_future(self, parsl_kernel):
        future = double(21)
        assert future.result(timeout=10) == 42

    def test_future_chaining_builds_dependencies(self, parsl_kernel):
        assert add(double(1), double(2)).result(timeout=10) == 6

    def test_fan_in(self, parsl_kernel):
        futures = [double(i) for i in range(10)]
        total = sum(f.result(timeout=10) for f in futures)
        assert total == 90

    def test_app_without_kernel_raises(self):
        clear()
        with pytest.raises(WorkflowError, match="no DataFlowKernel"):
            double(1)

    def test_exception_surfaces_in_future(self, parsl_kernel):
        @python_app
        def broken():
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            broken().result(timeout=10)

    def test_outputs_produce_datafutures(self, parsl_kernel, fs):
        @python_app
        def write(outputs=()):
            outputs[0].write("payload")
            return True

        f = File("out.txt", fs=fs)
        future = write(outputs=[f])
        assert future.result(timeout=10) is True
        assert len(future.outputs) == 1
        assert future.outputs[0].result(timeout=10).filepath == "out.txt"
        assert fs.open("out.txt") == "payload"

    def test_inputs_wait_for_upstream(self, parsl_kernel, fs):
        @python_app
        def produce(outputs=()):
            outputs[0].write([1, 2, 3])
            return True

        @python_app
        def consume(inputs=()):
            return sum(inputs[0].read())

        f = File("data.bin", fs=fs)
        up = produce(outputs=[f])
        down = consume(inputs=[up.outputs[0]])
        assert down.result(timeout=10) == 6

    def test_parameterized_decorator(self, parsl_kernel):
        @python_app(executors="threads")
        def tagged(x):
            return x

        assert tagged(5).result(timeout=10) == 5


class TestBashApps:
    def test_command_recorded_and_outputs_materialized(self, parsl_kernel, fs):
        @bash_app
        def touch(outputs=()):
            return f"touch {outputs[0].filepath}"

        f = File("made.txt", fs=fs)
        exit_code = touch(outputs=[f]).result(timeout=10)
        assert exit_code == 0
        assert f.exists()
        assert "touch made.txt" in parsl_kernel.bash_history()

    def test_non_string_command_rejected(self, parsl_kernel):
        @bash_app
        def bad():
            return 123

        with pytest.raises(WorkflowError, match="command string"):
            bad().result(timeout=10)


class TestConfigAndKernel:
    def test_duplicate_executor_labels_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            Config(executors=[ThreadPoolExecutor(), ThreadPoolExecutor()])

    def test_no_executors_rejected(self):
        with pytest.raises(ConfigError):
            Config(executors=[])

    def test_double_load_rejected(self, parsl_kernel):
        with pytest.raises(WorkflowError, match="already loaded"):
            load(Config())

    def test_clear_allows_reload(self):
        load(Config())
        clear()
        kernel = load(Config())
        assert dfk() is kernel
        clear()

    def test_unknown_executor_label(self, parsl_kernel):
        with pytest.raises(ConfigError, match="no executor labelled"):
            parsl_kernel.config.executor("ghost")

    def test_retries(self):
        attempts = {"n": 0}
        load(Config(executors=[ThreadPoolExecutor()], retries=2))
        try:
            @python_app
            def flaky():
                attempts["n"] += 1
                if attempts["n"] < 3:
                    raise RuntimeError("try again")
                return "ok"

            assert flaky().result(timeout=10) == "ok"
            assert attempts["n"] == 3
        finally:
            clear()

    def test_task_count(self, parsl_kernel):
        for i in range(4):
            double(i).result(timeout=10)
        assert parsl_kernel.task_count == 4


class TestHighThroughputExecutor:
    def test_round_robin_dispatch(self):
        executor = HighThroughputExecutor(max_workers_per_node=2, nodes=2)
        load(Config(executors=[executor]))
        try:
            futures = [double(i) for i in range(4)]
            for f in futures:
                f.result(timeout=10)
            assignments = executor.assignments()
            assert len(assignments) == 4
            assert len(set(assignments.values())) == 4  # all workers used
        finally:
            clear()


class TestValidator:
    def test_reference_ok(self):
        from repro.core.assets import annotated_producer

        report = validate_task_code(annotated_producer("parsl"))
        assert report.ok, report.render()

    def test_hallucinated_import_flagged(self):
        code = "from parsl import parsl_app\n@parsl_app\ndef f(): pass\nf().result()"
        report = validate_task_code(code)
        assert any(d.symbol == "parsl_app" for d in report.hallucinations())

    def test_missing_decorator_flagged(self):
        report = validate_task_code("def f(): pass\nf()")
        assert any(d.code == "missing-api" for d in report.errors())

    def test_redundant_executor_warned(self):
        from repro.core.assets import annotated_producer

        code = annotated_producer("parsl").replace(
            "parsl.load()",
            "parsl.load(Config(executors=[HighThroughputExecutor()]))",
        )
        report = validate_task_code(code)
        assert any(d.code == "redundant-api" for d in report.warnings())
