"""The chaos fault ladders, re-run across the network.

:mod:`tests.test_chaos` proves the fault-tolerance layer heals around
injected provider faults against a local :class:`RunStore`.  This suite
runs the same ladders through a :class:`RemoteRunStore` backed by a
real in-process server — quarantine sets, resume linkage and healed
grids must come out bit-identical even when every record, manifest and
failure row crosses a socket, and even while the server itself refuses
a deterministic slice of requests as overload.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import run_configuration
from repro.core.experiments.configuration import configuration_task
from repro.errors import UnitFailedError
from repro.runtime import (
    FaultPolicy,
    Plan,
    RetryPolicy,
    SerialExecutor,
    ThreadedExecutor,
    run,
)
from repro.serve import open_store
from repro.testing import (
    ChaosStoreServer,
    FaultPlan,
    InProcessServer,
    faulty_models,
)

MODELS = ["o3", "llama-3.3-70b"]
SIM_MODELS = [f"sim/{m}" for m in MODELS]
SYSTEMS = ["adios2", "wilkins"]

HEALING = FaultPolicy(retry=RetryPolicy(max_attempts=3, base_delay=0.0))

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05)


def small_sweep(executor=None, faults=None, store=None):
    return run_configuration(
        models=MODELS,
        systems=SYSTEMS,
        epochs=2,
        executor=executor,
        faults=faults,
        store=store,
    )


def resume_plan():
    plan = Plan("chaos-remote-resume")
    specs = {}
    for system in SYSTEMS:
        task = configuration_task(system)
        for model in SIM_MODELS:
            specs[(system, model)] = plan.add_eval(task, model, epochs=2)
    return plan, specs


class TestRemoteFaultLadders:
    def test_transient_faults_heal_bit_identically_over_the_wire(
        self, tmp_path
    ):
        baseline = small_sweep(SerialExecutor())
        plan = FaultPlan(seed=4, transient_rate=0.2, transient_times=1)
        with InProcessServer(tmp_path / "served") as server:
            with faulty_models(SIM_MODELS, plan) as wrapped:
                with open_store(server.url(), retry=FAST_RETRY) as remote:
                    grid = small_sweep(
                        ThreadedExecutor(max_workers=6),
                        faults=HEALING,
                        store=remote,
                    )
                injected = sum(p.injected_total for p in wrapped.values())
        assert injected > 0, "fault seed never fired; pick a different seed"
        assert grid.cells == baseline.cells

    def test_quarantine_then_resume_heals_over_the_wire(self, tmp_path):
        """The full ladder: fail → quarantine → resume → heal, remotely."""
        isolate = FaultPolicy(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            on_failure="isolate",
        )
        fault_plan = FaultPlan(seed=6, transient_rate=0.3, transient_times=3)
        with InProcessServer(tmp_path / "served") as server:
            with faulty_models(SIM_MODELS, fault_plan):
                plan1, specs1 = resume_plan()
                with open_store(server.url(), retry=FAST_RETRY) as store:
                    first = run(plan1, store=store, faults=isolate)
                    manifest = store.latest_manifest()
                assert first.stats.units_failed > 0
                failed_keys = {f.key for f in first.failures.values()}
                hit = 0
                for spec in specs1.values():
                    spec_uids = {
                        uid for _, uids in spec.sample_units for uid in uids
                    }
                    if spec_uids & set(first.failures):
                        with pytest.raises(
                            UnitFailedError, match="quarantined"
                        ):
                            first.eval_result(spec)
                        hit += 1
                assert hit > 0
                # the quarantine set crossed the wire onto the manifest
                assert manifest is not None
                assert {f.key for f in manifest.failures} == failed_keys

                # resume from a *fresh* client, like a new worker process
                plan2, specs2 = resume_plan()
                with open_store(server.url(), retry=FAST_RETRY) as store:
                    second = run(
                        plan2,
                        store=store,
                        faults=isolate,
                        resume_from=manifest.run_id,
                    )
        assert second.stats.units_failed == 0
        assert second.stats.generated == len(failed_keys)
        assert second.manifest.resumed_from == manifest.run_id
        assert not second.manifest.failures

        plan3, specs3 = resume_plan()
        reference = run(plan3)
        for cell, spec in specs2.items():
            healed = second.eval_result(spec)
            clean_eval = reference.eval_result(specs3[cell])
            assert [s.values for s in healed.samples[0].scores] == [
                s.values for s in clean_eval.samples[0].scores
            ]

    def test_ladder_survives_server_side_overload_too(self, tmp_path):
        """Provider faults *and* admission refusals at once, same grid."""
        baseline = small_sweep(SerialExecutor())
        provider_faults = FaultPlan(seed=4, transient_rate=0.2,
                                    transient_times=1)
        # every ~5th request answered with a typed overload refusal
        overload = FaultPlan(seed=11, transient_rate=0.2, transient_times=1)
        root = tmp_path / "served"
        server = InProcessServer(
            root, server=ChaosStoreServer(root, overload_plan=overload)
        )
        try:
            with faulty_models(SIM_MODELS, provider_faults):
                with open_store(server.url(), retry=FAST_RETRY) as remote:
                    grid = small_sweep(faults=HEALING, store=remote)
            assert server.server.refused_requests > 0
        finally:
            server.stop()
        assert grid.cells == baseline.cells
