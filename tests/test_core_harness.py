"""Evaluation harness: samples, solvers, scorers, tasks, eval loop."""

from __future__ import annotations

import pytest

from repro.core import (
    CodeSimilarityScorer,
    Sample,
    SolverChain,
    Task,
    evaluate,
    few_shot_solver,
    prompt_solver,
)
from repro.core.assets import fewshot_example_config, reference_config
from repro.core.solvers import doc_context_solver, identity_solver
from repro.errors import HarnessError, MetricError
from repro.llm.types import GenerateConfig


def config_sample(system: str = "wilkins", display: str = "Wilkins") -> Sample:
    return Sample(
        id=f"configuration/{system}",
        input="",
        target=reference_config(system),
        metadata={
            "experiment": "configuration",
            "system": system,
            "system_display": display,
        },
    )


class TestSolvers:
    def test_prompt_solver_renders_template(self):
        solved = prompt_solver("original")(config_sample())
        assert "Wilkins" in solved.input
        assert "3-node workflow" in solved.input
        assert solved.metadata["variant"] == "original"

    def test_prompt_solver_requires_experiment(self):
        sample = Sample(id="x", input="", target="", metadata={})
        with pytest.raises(HarnessError, match="experiment"):
            prompt_solver()(sample)

    def test_few_shot_appends_example(self):
        base = prompt_solver("original")(config_sample())
        solver = few_shot_solver(fewshot_example_config("wilkins"), "Wilkins")
        out = solver(base)
        assert "example configuration file" in out.input
        assert out.metadata["fewshot"] is True

    def test_doc_context_prepends_vocabulary(self):
        base = prompt_solver("original")(config_sample())
        out = doc_context_solver("wilkins", "Wilkins")(base)
        assert out.input.startswith("Documentation excerpt")
        assert "inports" in out.input

    def test_chain_order(self):
        chain = SolverChain([
            prompt_solver("original"),
            few_shot_solver(fewshot_example_config("wilkins"), "Wilkins"),
        ])
        out = chain(config_sample())
        assert out.input.index("3-node") < out.input.index("example configuration")

    def test_identity_solver(self):
        sample = config_sample()
        assert identity_solver()(sample) is sample

    def test_with_input_copies_metadata(self):
        sample = config_sample()
        clone = sample.with_input("new")
        clone.metadata["extra"] = 1
        assert "extra" not in sample.metadata


class TestScorer:
    def test_scores_both_metrics(self):
        scorer = CodeSimilarityScorer()
        score = scorer("```yaml\ntasks:\n- func: p\n```", "tasks:\n- func: p")
        assert score["bleu"] == pytest.approx(100.0)
        assert score["chrf"] == pytest.approx(100.0)
        assert score.answer == "tasks:\n- func: p"

    def test_chatter_stripped_before_scoring(self):
        scorer = CodeSimilarityScorer()
        wrapped = "Sure, here is the file.\n```\ntarget text\n```\nEnjoy!"
        assert scorer(wrapped, "target text")["bleu"] == pytest.approx(100.0)

    def test_unknown_metric_rejected(self):
        with pytest.raises(MetricError):
            CodeSimilarityScorer(metrics=("bleu", "rouge"))


class TestEvaluate:
    def test_epochs_and_aggregation(self):
        task = Task(
            name="t", dataset=[config_sample()], solvers=[prompt_solver("original")]
        )
        result = evaluate(task, "sim/claude-sonnet-4", epochs=3)
        assert result.epochs == 3
        assert len(result.samples[0].scores) == 3
        agg = result.aggregate("bleu")
        assert agg.n == 3
        assert 0 <= agg.mean <= 100
        # claude is deterministic: zero spread
        assert agg.stderr == 0.0

    def test_by_sample(self):
        task = Task(name="t", dataset=[config_sample()],
                    solvers=[prompt_solver("original")])
        result = evaluate(task, "sim/o3", epochs=2)
        per_sample = result.by_sample("bleu")
        assert set(per_sample) == {"configuration/wilkins"}

    def test_empty_dataset_rejected(self):
        with pytest.raises(HarnessError, match="empty dataset"):
            Task(name="t", dataset=[])

    def test_invalid_epochs(self):
        task = Task(name="t", dataset=[config_sample()],
                    solvers=[prompt_solver("original")])
        with pytest.raises(HarnessError):
            evaluate(task, "sim/o3", epochs=0)

    def test_seed_equals_epoch_index(self):
        """Two evaluations must reproduce each other epoch-for-epoch."""
        task = Task(name="t", dataset=[config_sample()],
                    solvers=[prompt_solver("original")])
        a = evaluate(task, "sim/gemini-2.5-pro", epochs=3)
        b = evaluate(task, "sim/gemini-2.5-pro", epochs=3)
        assert a.samples[0].metric_values("bleu") == b.samples[0].metric_values("bleu")

    def test_custom_generate_config(self):
        task = Task(name="t", dataset=[config_sample()],
                    solvers=[prompt_solver("original")])
        result = evaluate(
            task, "sim/llama-3.3-70b", epochs=2,
            config=GenerateConfig(temperature=0.0, top_p=0.5),
        )
        values = result.samples[0].metric_values("bleu")
        assert values[0] == values[1]  # temperature 0 => deterministic
