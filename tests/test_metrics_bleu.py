"""BLEU: identity, boundary, smoothing, brevity, corpus semantics."""

from __future__ import annotations

import pytest

from repro.errors import MetricError
from repro.metrics import bleu, corpus_bleu


REF = "tasks:\n- func: producer\n  nprocs: 3\n  outports:\n  - filename: outfile.h5"


class TestSentenceBleu:
    def test_identity_is_100(self):
        assert bleu(REF, REF) == pytest.approx(100.0)

    def test_disjoint_is_0_unsmoothed(self):
        score = bleu(
            "alpha beta gamma delta", "one two three four", smooth_method="none"
        )
        assert score == 0.0

    def test_disjoint_stays_small_with_exp_smoothing(self):
        # exp smoothing floors zero counts, so tiny-but-nonzero is correct
        assert bleu("alpha beta gamma delta", "one two three four") < 15.0

    def test_range(self):
        score = bleu("tasks:\n- func: writer", REF)
        assert 0.0 <= score <= 100.0

    def test_partial_overlap_midrange(self):
        hyp = REF.replace("producer", "writer").replace("nprocs", "processes")
        score = bleu(hyp, REF)
        assert 10.0 < score < 90.0

    def test_more_corruption_scores_lower(self):
        mild = REF.replace("producer", "writer")
        heavy = REF.replace("producer", "writer").replace("outports", "outputs").replace(
            "filename", "file_name"
        )
        assert bleu(heavy, REF) < bleu(mild, REF)

    def test_empty_hypothesis(self):
        assert bleu("", REF) == 0.0

    def test_multi_reference_takes_best_match(self):
        refs = ["completely different text here", REF]
        assert bleu(REF, refs) == pytest.approx(100.0)


class TestBrevityPenalty:
    def test_short_hypothesis_penalized(self):
        full = " ".join(["token"] * 20)
        half = " ".join(["token"] * 10)
        assert bleu(half, full) < bleu(full, full)

    def test_long_hypothesis_not_bp_penalized(self):
        # precision still drops, but BP must be 1.0
        result = corpus_bleu([REF + "\nextra: line"], [REF])
        assert result.bp == pytest.approx(1.0)

    def test_bp_formula(self):
        result = corpus_bleu(["a b c"], ["a b c d e f"])
        assert result.bp == pytest.approx(pow(2.718281828, 1 - 6 / 3), rel=1e-6)


class TestSmoothing:
    def test_exp_smoothing_gives_nonzero_for_unigram_only_match(self):
        score = bleu("producer", "producer consumer analyzer monitor")
        assert score > 0.0

    def test_none_smoothing_gives_zero_when_higher_orders_empty(self):
        score = bleu(
            "producer consumer widget gadget",
            "producer gadget consumer widget",
            smooth_method="none",
        )
        # no matching 3-grams / 4-grams: geometric mean collapses to 0
        assert score == 0.0

    def test_floor_and_addk_valid(self):
        for method in ("floor", "add-k"):
            score = bleu("a b", "c d", smooth_method=method)
            assert 0.0 <= score <= 100.0

    def test_unknown_smoothing_raises(self):
        with pytest.raises(MetricError):
            bleu("a", "a", smooth_method="bogus")


class TestCorpusBleu:
    def test_empty_corpus_raises(self):
        with pytest.raises(MetricError):
            corpus_bleu([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(MetricError):
            corpus_bleu(["a"], ["a", "b"])

    def test_corpus_not_mean_of_sentences(self):
        # corpus BLEU pools counts; it is not the average of sentence scores
        hyps = ["the cat sat on the mat quietly", "zz yy xx ww"]
        refs = ["the cat sat on the mat quietly", "aa bb cc dd"]
        corpus = corpus_bleu(hyps, refs).score
        sentence_mean = (bleu(hyps[0], refs[0]) + bleu(hyps[1], refs[1])) / 2
        assert corpus != pytest.approx(sentence_mean)

    def test_format_string(self):
        formatted = corpus_bleu([REF], [REF]).format()
        assert "BLEU = 100.00" in formatted
        assert "hyp_len" in formatted

    def test_score_capped_at_100(self):
        assert corpus_bleu([REF], [REF]).score <= 100.0

    def test_max_order_configurable(self):
        bigram_only = bleu("a b c d", "a b x d", max_order=2)
        four_gram = bleu("a b c d", "a b x d", max_order=4)
        assert bigram_only >= four_gram
