"""Circuit breakers: state machine, registry, policy and scheduler hooks.

Every timing-sensitive test drives a fake clock, so the full
closed → open → half-open → closed cycle runs without sleeping.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import run_configuration
from repro.errors import (
    BreakerOpenError,
    HarnessError,
    ModelError,
    RemoteStoreError,
    UnknownModelError,
)
from repro.llm.types import ChatMessage, GenerateConfig, ModelOutput, ModelUsage
from repro.obs import metering
from repro.runtime import (
    AdaptiveScheduler,
    BreakerRegistry,
    ExpectedCostModel,
    FaultPolicy,
    HealthTracker,
    HealthTrackedProvider,
    Plan,
    RetryPolicy,
    SerialExecutor,
    run,
)
from repro.runtime.faults import FaultState
from repro.runtime.health import _counts_against_breaker
from repro.testing import FaultPlan, faulty_models

MODELS = ["o3", "llama-3.3-70b"]
SIM_MODELS = [f"sim/{m}" for m in MODELS]
SYSTEMS = ["adios2", "wilkins"]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(clock: FakeClock, **overrides) -> HealthTracker:
    options = dict(
        window=8,
        failure_threshold=0.5,
        min_samples=3,
        open_for_s=5.0,
        half_open_probes=1,
        clock=clock,
    )
    options.update(overrides)
    return HealthTracker("target-a", **options)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        tracker = make_tracker(FakeClock())
        assert tracker.state == "closed"
        assert not tracker.is_open
        assert tracker.allow()
        tracker.check()  # no raise

    def test_trips_open_at_threshold_with_min_samples(self):
        tracker = make_tracker(FakeClock())
        tracker.record_failure()
        tracker.record_failure()
        # two failures but min_samples=3: still closed
        assert tracker.state == "closed"
        tracker.record_failure()
        assert tracker.state == "open"
        assert tracker.is_open
        assert tracker.opened_total == 1
        assert not tracker.allow()
        with pytest.raises(BreakerOpenError, match="target-a"):
            tracker.check()

    def test_successes_keep_error_rate_under_threshold(self):
        tracker = make_tracker(FakeClock())
        for _ in range(5):
            tracker.record_success()
        tracker.record_failure()
        tracker.record_failure()
        # 2/7 < 0.5: closed
        assert tracker.state == "closed"
        assert tracker.error_rate() == pytest.approx(2 / 7)

    def test_rolling_window_forgets_old_outcomes(self):
        tracker = make_tracker(FakeClock(), window=4)
        tracker.record_failure()
        tracker.record_failure()
        # four successes push both failures out of the window
        for _ in range(4):
            tracker.record_success()
        assert tracker.error_rate() == 0.0
        assert tracker.state == "closed"

    def test_cooldown_moves_open_to_half_open(self):
        clock = FakeClock()
        tracker = make_tracker(clock, open_for_s=5.0)
        tracker.force_open()
        clock.advance(4.99)
        assert tracker.state == "open"
        clock.advance(0.02)
        assert tracker.state == "half-open"
        assert not tracker.is_open  # probes may flow

    def test_half_open_grants_exactly_the_probe_budget(self):
        clock = FakeClock()
        tracker = make_tracker(clock, half_open_probes=2)
        tracker.force_open()
        clock.advance(5.0)
        assert tracker.allow()
        assert tracker.allow()
        assert not tracker.allow()  # probes spent, outcome still pending

    def test_probe_success_closes_and_counts_rejoin(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(3):
            tracker.record_failure()
        clock.advance(5.0)
        assert tracker.allow()
        tracker.record_success()
        assert tracker.state == "closed"
        assert tracker.rejoined_total == 1
        # the bad history is forgotten: one new failure must not re-trip
        tracker.record_failure()
        assert tracker.state == "closed"

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        tracker.force_open()
        clock.advance(5.0)
        assert tracker.allow()
        tracker.record_failure()
        assert tracker.state == "open"
        assert tracker.opened_total == 2
        clock.advance(5.0)
        assert tracker.state == "half-open"

    def test_reset_restores_pristine_closed(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        tracker.force_open()
        tracker.reset()
        assert tracker.state == "closed"
        assert tracker.error_rate() == 0.0
        assert tracker.allow()

    def test_describe_reports_the_window(self):
        tracker = make_tracker(FakeClock())
        tracker.record_success()
        tracker.record_failure()
        desc = tracker.describe()
        assert desc["target"] == "target-a"
        assert desc["state"] == "closed"
        assert desc["window"] == 2
        assert desc["error_rate"] == pytest.approx(0.5)

    def test_invalid_knobs_rejected(self):
        clock = FakeClock()
        with pytest.raises(HarnessError, match="window"):
            make_tracker(clock, window=0)
        with pytest.raises(HarnessError, match="failure_threshold"):
            make_tracker(clock, failure_threshold=0.0)
        with pytest.raises(HarnessError, match="min_samples"):
            make_tracker(clock, min_samples=0)
        with pytest.raises(HarnessError, match="open_for_s"):
            make_tracker(clock, open_for_s=-1)
        with pytest.raises(HarnessError, match="half_open_probes"):
            make_tracker(clock, half_open_probes=0)


class TestMetricsEmission:
    def test_transitions_mirror_into_the_ambient_registry(self):
        clock = FakeClock()
        with metering() as registry:
            tracker = make_tracker(clock)
            for _ in range(3):
                tracker.record_failure()
            clock.advance(5.0)
            assert tracker.state == "half-open"
            tracker.record_success()
            gauge = registry.gauge(
                "repro_breaker_state",
                "circuit-breaker state per target (0=closed 1=open 2=half-open)",
                ("target",),
            )
            transitions = registry.counter(
                "repro_breaker_transitions_total",
                "circuit-breaker transitions per target and destination state",
                ("target", "state"),
            )
            assert gauge.value(target="target-a") == 0  # closed again
            assert transitions.value(target="target-a", state="open") == 1
            assert transitions.value(target="target-a", state="half-open") == 1
            assert transitions.value(target="target-a", state="closed") == 1

    def test_no_registry_no_crash(self):
        tracker = make_tracker(FakeClock())
        for _ in range(3):
            tracker.record_failure()  # transitions with no ambient registry
        assert tracker.state == "open"


class TestBreakerRegistry:
    def test_get_creates_lazily_and_returns_the_same_tracker(self):
        registry = BreakerRegistry(window=4, min_samples=2)
        assert len(registry) == 0
        a = registry.get("a")
        assert registry.get("a") is a
        assert a.window == 4 and a.min_samples == 2
        assert len(registry) == 1

    def test_peek_never_creates(self):
        registry = BreakerRegistry()
        assert registry.peek("ghost") is None
        assert len(registry) == 0
        registry.get("real")
        assert registry.peek("real") is not None

    def test_states_and_snapshot(self):
        registry = BreakerRegistry(min_samples=1, failure_threshold=0.5)
        registry.get("up").record_success()
        registry.get("down").record_failure()
        assert registry.states() == {"up": "closed", "down": "open"}
        snapshot = registry.snapshot()
        assert [entry["target"] for entry in snapshot] == ["down", "up"]


class TestFailureClassification:
    def test_transient_model_errors_count(self):
        assert _counts_against_breaker(ModelError("rate limited"))
        assert _counts_against_breaker(RemoteStoreError("link down"))
        assert _counts_against_breaker(OSError("connection reset"))

    def test_deterministic_and_refusal_errors_do_not(self):
        assert not _counts_against_breaker(UnknownModelError("typo/model"))
        assert not _counts_against_breaker(BreakerOpenError("refused"))
        assert not _counts_against_breaker(TypeError("bug"))


def _echo_provider():
    class Echo:
        name = "health/echo"
        custom_marker = "passthrough"

        def generate(self, messages, config):
            return ModelOutput(
                model=self.name,
                completion=messages[-1].content,
                usage=ModelUsage(input_tokens=1, output_tokens=1),
                stop_reason="stop",
            )

    return Echo()


class _FailingProvider:
    name = "health/failing"

    def __init__(self, exc: Exception) -> None:
        self.exc = exc
        self.calls = 0

    def generate(self, messages, config):
        self.calls += 1
        raise self.exc


class TestHealthTrackedProvider:
    def test_success_feeds_the_window_and_passes_through(self):
        tracker = make_tracker(FakeClock())
        wrapped = HealthTrackedProvider(_echo_provider(), tracker)
        out = wrapped.generate([ChatMessage.user("hi")], GenerateConfig(seed=0))
        assert out.completion == "hi"
        assert wrapped.name == "health/echo"
        assert wrapped.custom_marker == "passthrough"  # __getattr__ passthrough
        assert tracker.error_rate() == 0.0

    def test_transient_failures_trip_and_open_refuses_without_calling(self):
        tracker = make_tracker(FakeClock(), min_samples=2)
        provider = _FailingProvider(ModelError("rate limited"))
        wrapped = HealthTrackedProvider(provider, tracker)
        msgs = [ChatMessage.user("hi")]
        cfg = GenerateConfig(seed=0)
        for _ in range(2):
            with pytest.raises(ModelError, match="rate limited"):
                wrapped.generate(msgs, cfg)
        assert tracker.state == "open"
        with pytest.raises(BreakerOpenError):
            wrapped.generate(msgs, cfg)
        assert provider.calls == 2  # the refused call never reached it

    def test_deterministic_failures_never_trip(self):
        tracker = make_tracker(FakeClock(), min_samples=1)
        wrapped = HealthTrackedProvider(
            _FailingProvider(UnknownModelError("typo")), tracker
        )
        for _ in range(5):
            with pytest.raises(UnknownModelError):
                wrapped.generate([ChatMessage.user("x")], GenerateConfig(seed=0))
        assert tracker.state == "closed"


class TestFaultPolicyIntegration:
    def test_policy_validates_health_and_shared_budget_shapes(self):
        with pytest.raises(HarnessError, match="BreakerRegistry"):
            FaultPolicy(health=object())
        with pytest.raises(HarnessError, match="try_acquire"):
            FaultPolicy(shared_budget=object())
        FaultPolicy(health=BreakerRegistry())  # the real thing passes

    def test_attempt_outcomes_feed_the_models_breaker(self):
        # isolated transients (one strike per key, then a clean retry) sit
        # far below a 90% windowed error rate: breakers observe, never trip
        registry = BreakerRegistry(min_samples=4, failure_threshold=0.9)
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            health=registry,
        )
        fault_plan = FaultPlan(seed=4, transient_rate=0.2, transient_times=1)
        baseline = run_configuration(
            models=MODELS, systems=SYSTEMS, epochs=2,
            executor=SerialExecutor(),
        )
        with faulty_models(SIM_MODELS, fault_plan) as wrapped:
            grid = run_configuration(
                models=MODELS, systems=SYSTEMS, epochs=2,
                executor=SerialExecutor(), faults=policy,
            )
            assert sum(p.injected_total for p in wrapped.values()) > 0
        # breakers observed real traffic for every model and stayed closed
        # (isolated transients never cross the 50% windowed threshold)
        assert set(registry.states()) == set(SIM_MODELS)
        assert all(s == "closed" for s in registry.states().values())
        assert grid.cells == baseline.cells

    def test_open_breaker_refuses_attempts_with_retryable_error(self):
        registry = BreakerRegistry()
        registry.get("sim/o3").force_open()
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            health=registry,
        )
        plan = Plan("breaker-open")
        from repro.core.experiments.configuration import configuration_task

        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        with pytest.raises(BreakerOpenError, match="sim/o3"):
            run(plan, faults=policy)
        # BreakerOpenError is retryable, so isolating policies quarantine
        assert RetryPolicy().is_retryable(BreakerOpenError("x"))

    def test_open_breaker_with_isolate_quarantines_instead(self):
        registry = BreakerRegistry()
        registry.get("sim/o3").force_open()
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            health=registry,
            on_failure="isolate",
        )
        plan = Plan("breaker-isolate")
        from repro.core.experiments.configuration import configuration_task

        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=2)
        plan.add_eval(configuration_task("adios2"), "sim/llama-3.3-70b", epochs=2)
        outcome = run(plan, faults=policy)
        assert outcome.stats.units_failed == 2  # the open model's epochs
        assert outcome.stats.generated == 2  # the healthy model's epochs
        failed_models = {f.model for f in outcome.failures.values()}
        assert failed_models == {"sim/o3"}


class _Budget:
    """A scriptable shared budget."""

    def __init__(self, verdicts) -> None:
        self.verdicts = list(verdicts)
        self.calls = 0

    def try_acquire(self) -> bool:
        self.calls += 1
        verdict = self.verdicts.pop(0)
        if isinstance(verdict, Exception):
            raise verdict
        return verdict


class TestSharedBudget:
    def _unit(self):
        plan = Plan("budget")
        from repro.core.experiments.configuration import configuration_task

        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        return plan.units[0]

    def test_denied_shared_budget_exhausts(self):
        budget = _Budget([False])
        state = FaultState(FaultPolicy(retry_budget=99, shared_budget=budget))
        assert not state._acquire_retry(self._unit().uid, 0.0)
        assert state.budget_exhausted
        assert budget.calls == 1

    def test_granted_shared_budget_overrides_local(self):
        budget = _Budget([True, True, True])
        # local budget of zero would deny; the shared verdict governs
        state = FaultState(FaultPolicy(retry_budget=0, shared_budget=budget))
        for _ in range(3):
            assert state._acquire_retry(self._unit().uid, 0.0)
        assert state.retries == 3

    def test_erroring_shared_budget_fails_open_to_local(self):
        budget = _Budget([ConnectionError("counter server down")] * 2)
        state = FaultState(FaultPolicy(retry_budget=1, shared_budget=budget))
        assert state._acquire_retry(self._unit().uid, 0.0)  # local token 1
        assert not state._acquire_retry(self._unit().uid, 0.0)  # local spent
        assert state.budget_exhausted


class TestFaultAwareScheduling:
    def _units(self):
        plan = Plan("sched")
        from repro.core.experiments.configuration import configuration_task

        task = configuration_task("adios2")
        for model in ("sim/o3", "sim/llama-3.3-70b"):
            plan.add_eval(task, model, epochs=2)
        return plan.units

    def test_open_breaker_sorts_behind_healthy_units(self):
        clock = FakeClock()
        registry = BreakerRegistry(clock=clock)
        registry.get("sim/o3").force_open()
        scheduler = AdaptiveScheduler(health=registry)
        ordered = scheduler.order(self._units())
        assert [u.model for u in ordered] == (
            ["sim/llama-3.3-70b"] * 2 + ["sim/o3"] * 2
        )

    def test_probe_ready_breaker_is_not_deprioritized(self):
        clock = FakeClock()
        registry = BreakerRegistry(clock=clock, open_for_s=5.0)
        registry.get("sim/o3").force_open()
        clock.advance(5.0)  # cooldown elapsed: these units are the probes
        scheduler = AdaptiveScheduler(health=registry)
        units = self._units()
        assert scheduler.order(units) == list(units)

    def test_unknown_models_and_no_registry_keep_plan_order(self):
        units = self._units()
        assert AdaptiveScheduler(health=BreakerRegistry()).order(units) == list(
            units
        )
        assert AdaptiveScheduler().order(units) == list(units)

    def test_cost_model_still_orders_within_health_classes(self):
        cost = ExpectedCostModel()
        cost.observe("sim/o3", 5.0)
        cost.observe("sim/llama-3.3-70b", 0.1)
        registry = BreakerRegistry()
        registry.get("sim/o3").force_open()
        ordered = AdaptiveScheduler(cost, health=registry).order(self._units())
        # expensive-but-open sorts behind cheap-and-healthy
        assert [u.model for u in ordered] == (
            ["sim/llama-3.3-70b"] * 2 + ["sim/o3"] * 2
        )
