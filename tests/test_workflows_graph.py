"""Workflow graph: construction, queries, validation."""

from __future__ import annotations

import pytest

from repro.errors import WorkflowError
from repro.workflows.graph import DataLink, TaskSpec, WorkflowGraph, linear_pipeline


def three_node() -> WorkflowGraph:
    g = WorkflowGraph()
    g.add_task(TaskSpec("producer", nprocs=3))
    g.add_task(TaskSpec("consumer1"))
    g.add_task(TaskSpec("consumer2"))
    g.add_link(DataLink("producer", "consumer1", "grid", transport="memory"))
    g.add_link(DataLink("producer", "consumer2", "particles", transport="memory"))
    return g


class TestConstruction:
    def test_duplicate_task_rejected(self):
        g = WorkflowGraph()
        g.add_task(TaskSpec("a"))
        with pytest.raises(WorkflowError, match="duplicate"):
            g.add_task(TaskSpec("a"))

    def test_link_unknown_task_rejected(self):
        g = WorkflowGraph()
        g.add_task(TaskSpec("a"))
        with pytest.raises(WorkflowError, match="unknown task"):
            g.add_link(DataLink("a", "ghost", "d"))

    def test_invalid_nprocs(self):
        with pytest.raises(WorkflowError):
            TaskSpec("a", nprocs=0)

    def test_invalid_transport(self):
        with pytest.raises(WorkflowError, match="transport"):
            DataLink("a", "b", "d", transport="carrier-pigeon")


class TestQueries:
    def test_sources_sinks(self):
        g = three_node()
        assert g.sources() == ["producer"]
        assert g.sinks() == ["consumer1", "consumer2"]

    def test_producers_consumers_of(self):
        g = three_node()
        assert [link.dataset for link in g.consumers_of("producer")] == [
            "grid", "particles"]
        assert [link.producer for link in g.producers_of("consumer1")] == [
            "producer"]

    def test_total_procs(self):
        assert three_node().total_procs() == 5

    def test_datasets(self):
        assert three_node().datasets() == ["grid", "particles"]

    def test_contains_len(self):
        g = three_node()
        assert "producer" in g
        assert len(g) == 3

    def test_task_lookup_missing(self):
        with pytest.raises(WorkflowError):
            three_node().task("nope")


class TestTopology:
    def test_dag_and_order(self):
        g = three_node()
        assert g.is_dag()
        order = g.topological_order()
        assert order.index("producer") < order.index("consumer1")

    def test_cycle_detected(self):
        g = WorkflowGraph()
        g.add_task(TaskSpec("a"))
        g.add_task(TaskSpec("b"))
        g.add_link(DataLink("a", "b", "x"))
        g.add_link(DataLink("b", "a", "y"))
        assert not g.is_dag()
        with pytest.raises(WorkflowError, match="cycle"):
            g.topological_order()

    def test_validate_disconnected(self):
        g = WorkflowGraph()
        g.add_task(TaskSpec("a"))
        g.add_task(TaskSpec("b"))
        with pytest.raises(WorkflowError, match="not connected"):
            g.validate()

    def test_validate_duplicate_link(self):
        g = WorkflowGraph()
        g.add_task(TaskSpec("a"))
        g.add_task(TaskSpec("b"))
        g.add_link(DataLink("a", "b", "d"))
        g.add_link(DataLink("a", "b", "d"))
        with pytest.raises(WorkflowError, match="duplicate link"):
            g.validate()

    def test_validate_empty(self):
        with pytest.raises(WorkflowError, match="no tasks"):
            WorkflowGraph().validate()

    def test_valid_three_node_passes(self):
        three_node().validate()


class TestLinearPipeline:
    def test_shape(self):
        g = linear_pipeline(["a", "b", "c"])
        assert g.sources() == ["a"]
        assert g.sinks() == ["c"]
        assert g.topological_order() == ["a", "b", "c"]
