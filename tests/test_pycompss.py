"""PyCOMPSs substrate: @task, directions, synchronization API, validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkflowError
from repro.workflows.pycompss import (
    FILE_IN,
    FILE_INOUT,
    FILE_OUT,
    compss_barrier,
    compss_open,
    compss_wait_on,
    compss_wait_on_file,
    task,
    validate_task_code,
)


class TestTaskDecorator:
    def test_returns_future_placeholder(self, compss_runtime):
        @task(returns=int)
        def square(x):
            return x * x

        future = square(6)
        assert compss_wait_on(future) == 36

    def test_no_returns_gives_none(self, compss_runtime):
        @task()
        def fire_and_forget(x):
            return None

        assert fire_and_forget(1) is None
        compss_barrier()

    def test_multiple_returns_unpack(self, compss_runtime):
        @task(returns=2)
        def divmod_task(a, b):
            return a // b, a % b

        q, r = divmod_task(17, 5)
        assert compss_wait_on(q) == 3
        assert compss_wait_on(r) == 2

    def test_future_args_create_dependencies(self, compss_runtime):
        @task(returns=int)
        def inc(x):
            return x + 1

        chained = inc(inc(inc(0)))
        assert compss_wait_on(chained) == 3

    def test_file_dependency_ordering(self, compss_runtime):
        order = []

        @task(fname=FILE_OUT)
        def write(fname):
            order.append("write")
            compss_runtime.fs.create(fname, np.arange(5.0))

        @task(fname=FILE_IN, returns=float)
        def read(fname):
            order.append("read")
            return float(np.sum(compss_runtime.fs.open(fname)))

        write("d.npy")
        total = read("d.npy")
        assert compss_wait_on(total) == 10.0
        assert order == ["write", "read"]

    def test_file_inout_chains(self, compss_runtime):
        @task(fname=FILE_OUT)
        def init(fname):
            compss_runtime.fs.create(fname, [1])

        @task(fname=FILE_INOUT)
        def append(fname):
            compss_runtime.fs.open(fname).append(2)

        @task(fname=FILE_IN, returns=list)
        def readback(fname):
            return list(compss_runtime.fs.open(fname))

        init("log")
        append("log")
        append("log")
        assert compss_wait_on(readback("log")) == [1, 2, 2]

    def test_invocation_records_dependencies(self, compss_runtime):
        @task(fname=FILE_OUT)
        def w(fname):
            compss_runtime.fs.create(fname, 1)

        @task(fname=FILE_IN, returns=int)
        def r(fname):
            return compss_runtime.fs.open(fname)

        w("x")
        compss_wait_on(r("x"))
        invocations = compss_runtime.invocations()
        assert [(i.name, i.n_deps) for i in invocations] == [("w", 0), ("r", 1)]

    def test_non_direction_kwarg_rejected(self):
        with pytest.raises(WorkflowError, match="Direction"):
            @task(fname="FILE_OUT")  # string, not Direction
            def bad(fname):
                pass

    def test_unknown_parameter_rejected(self):
        with pytest.raises(WorkflowError, match="unknown parameters"):
            @task(ghost=FILE_OUT)
            def bad(fname):
                pass

    def test_file_param_must_be_path(self, compss_runtime):
        @task(fname=FILE_OUT)
        def w(fname):
            pass

        with pytest.raises(WorkflowError, match="path string"):
            w(123)


class TestSynchronizationApi:
    def test_wait_on_passthrough(self, compss_runtime):
        assert compss_wait_on(42) == 42

    def test_wait_on_list(self, compss_runtime):
        @task(returns=int)
        def one():
            return 1

        values = compss_wait_on([one(), one(), 5])
        assert values == [1, 1, 5]

    def test_wait_on_empty_raises(self):
        with pytest.raises(WorkflowError):
            compss_wait_on()

    def test_wait_on_file_returns_path(self, compss_runtime):
        @task(fname=FILE_OUT)
        def w(fname):
            compss_runtime.fs.create(fname, "x")

        w("a.txt")
        assert compss_wait_on_file("a.txt") == "a.txt"
        assert compss_runtime.fs.open("a.txt") == "x"

    def test_wait_on_file_type_checked(self, compss_runtime):
        with pytest.raises(WorkflowError, match="path strings"):
            compss_wait_on_file(123)

    def test_compss_open_read(self, compss_runtime):
        @task(fname=FILE_OUT)
        def w(fname):
            compss_runtime.fs.create(fname, "content")

        w("f.txt")
        assert compss_open("f.txt") == "content"

    def test_compss_open_write_handle(self, compss_runtime):
        with compss_open("new.txt", "w") as handle:
            handle.write("hello ")
            handle.write("world")
        assert compss_runtime.fs.open("new.txt") == "hello world"

    def test_barrier_waits_all(self, compss_runtime):
        done = []

        @task()
        def slow(i):
            done.append(i)

        for i in range(5):
            slow(i)
        compss_barrier()
        assert sorted(done) == [0, 1, 2, 3, 4]


class TestValidator:
    def test_reference_ok(self):
        from repro.core.assets import annotated_producer

        report = validate_task_code(annotated_producer("pycompss"))
        assert report.ok, report.render()

    def test_missing_wait_on_file_flagged(self):
        from repro.core.assets import annotated_producer

        bad = "\n".join(
            ln for ln in annotated_producer("pycompss").split("\n")
            if "compss_wait_on_file" not in ln
        )
        report = validate_task_code(bad)
        assert any(d.symbol == "compss_wait_on_file" for d in report.missing())

    def test_hallucinated_call_flagged(self):
        code = "@task()\ndef f(): pass\ncompss_wait_file('x')\nFILE_OUT"
        report = validate_task_code(code)
        assert any(d.symbol == "compss_wait_file" for d in report.hallucinations())

    def test_unknown_decorator_flagged(self):
        code = "@parallel_task\ndef f(): pass"
        report = validate_task_code(code)
        assert any(d.symbol == "parallel_task" for d in report.hallucinations())
