"""Aggregation statistics: mean, standard error, pooling."""

from __future__ import annotations

import math

import pytest

from repro.metrics.stats import Aggregate, aggregate, mean, pool, stderr


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStderr:
    def test_known_value(self):
        # sample std of [1,2,3] is 1.0; stderr = 1/sqrt(3)
        assert stderr([1.0, 2.0, 3.0]) == pytest.approx(1.0 / math.sqrt(3))

    def test_single_observation_is_zero(self):
        assert stderr([5.0]) == 0.0

    def test_identical_observations_exactly_zero(self):
        assert stderr([28.14991553857761] * 5) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stderr([])


class TestAggregate:
    def test_fields(self):
        agg = aggregate([10.0, 20.0])
        assert agg.mean == pytest.approx(15.0)
        assert agg.n == 2

    def test_render(self):
        # sample std of [10,20] is 7.071; stderr = 7.071/sqrt(2) = 5.0
        assert aggregate([10.0, 20.0]).render() == "15.0±5.0"

    def test_render_precision(self):
        assert aggregate([10.0, 20.0]).render(precision=2) == "15.00±5.00"


class TestPool:
    def test_pool_means_across_conditions(self):
        a = Aggregate(mean=60.0, stderr=1.0, n=5)
        b = Aggregate(mean=20.0, stderr=1.0, n=5)
        pooled = pool([a, b])
        assert pooled.mean == pytest.approx(40.0)
        # overall spread reflects across-condition variance, like the paper
        assert pooled.stderr > 1.0

    def test_pool_empty_raises(self):
        with pytest.raises(ValueError):
            pool([])

    def test_pool_single(self):
        pooled = pool([Aggregate(mean=10.0, stderr=2.0, n=5)])
        assert pooled.mean == 10.0
        assert pooled.stderr == 0.0
