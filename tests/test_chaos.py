"""Chaos suite: the fault-tolerance layer under deterministic injected fire.

Every test here injects faults from a fixed :class:`repro.testing.FaultPlan`
seed, so "random" failures strike the same requests on every run and in
every executor — the suite is as reproducible as the harness it audits.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.experiments import run_configuration
from repro.core.experiments.configuration import configuration_task
from repro.errors import UnitFailedError
from repro.llm.types import GenerateConfig
from repro.persist import RunStore
from repro.runtime import (
    AsyncExecutor,
    BatchingExecutor,
    FaultPolicy,
    Plan,
    RetryPolicy,
    ScoringPool,
    SerialExecutor,
    ThreadedExecutor,
    run,
)
from repro.testing import (
    FaultPlan,
    FaultyProvider,
    FaultyStore,
    faulty_models,
    kill_pool_workers,
)

MODELS = ["o3", "llama-3.3-70b"]
SIM_MODELS = [f"sim/{m}" for m in MODELS]
SYSTEMS = ["adios2", "wilkins"]

# heals within a run: up to 2 consecutive strikes, 3 attempts, no sleeping
HEALING = FaultPolicy(retry=RetryPolicy(max_attempts=3, base_delay=0.0))


def small_sweep(executor=None, faults=None, store=None):
    return run_configuration(
        models=MODELS,
        systems=SYSTEMS,
        epochs=2,
        executor=executor,
        faults=faults,
        store=store,
    )


def resume_plan():
    """A fresh plan over the same cells as :func:`small_sweep`."""
    plan = Plan("chaos-resume")
    specs = {}
    for system in SYSTEMS:
        task = configuration_task(system)
        for model in SIM_MODELS:
            specs[(system, model)] = plan.add_eval(task, model, epochs=2)
    return plan, specs


class TestFaultPlanDeterminism:
    def test_roll_is_pure_and_uniformish(self):
        plan = FaultPlan(seed=7)
        rolls = [plan.roll("transient", f"key-{i}") for i in range(200)]
        assert rolls == [plan.roll("transient", f"key-{i}") for i in range(200)]
        assert all(0.0 <= r < 1.0 for r in rolls)
        # seeds and kinds decorrelate the stream
        assert rolls != [FaultPlan(seed=8).roll("transient", f"key-{i}")
                         for i in range(200)]
        assert rolls != [plan.roll("permanent", f"key-{i}") for i in range(200)]
        # a 20% plan strikes roughly 20% of keys (deterministically)
        plan20 = FaultPlan(seed=7, transient_rate=0.2)
        struck = sum(plan20.strikes("transient", f"key-{i}") for i in range(500))
        assert 60 <= struck <= 140

    def test_strike_consumption_is_bounded(self):
        plan = FaultPlan(seed=1, transient_rate=1.0, transient_times=2)
        provider = FaultyProvider(_echo_provider(), plan)
        msgs = [_msg("hello")]
        cfg = GenerateConfig(seed=0)
        for _ in range(2):
            with pytest.raises(Exception, match="transient"):
                provider.generate(msgs, cfg)
        # third call passes through: the schedule is exhausted for this key
        assert provider.generate(msgs, cfg).completion == "hello"
        assert provider.injected["transient"] == 2


def _msg(content):
    from repro.llm.types import ChatMessage

    return ChatMessage.user(content)


def _echo_provider():
    from repro.llm.types import ModelOutput, ModelUsage

    class Echo:
        name = "chaos/echo"

        def generate(self, messages, config):
            return ModelOutput(
                model=self.name,
                completion=messages[-1].content,
                usage=ModelUsage(input_tokens=1, output_tokens=1),
                stop_reason="stop",
            )

    return Echo()


class TestTransientFaultsBitIdentical:
    """~20% injected transient faults; grids must not change by one bit."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return small_sweep(SerialExecutor())

    @pytest.mark.parametrize(
        "name,make",
        [
            ("serial", SerialExecutor),
            ("threaded", lambda: ThreadedExecutor(max_workers=6)),
            ("async", lambda: AsyncExecutor(max_concurrency=6)),
            ("batched", lambda: BatchingExecutor()),
        ],
    )
    def test_grid_identical_under_fire(self, baseline, name, make):
        plan = FaultPlan(seed=4, transient_rate=0.2, transient_times=1)
        with faulty_models(SIM_MODELS, plan) as wrapped:
            grid = small_sweep(make(), faults=HEALING)
            injected = sum(p.injected_total for p in wrapped.values())
        assert injected > 0, "fault seed never fired; pick a different seed"
        assert grid.cells == baseline.cells

    def test_latency_spikes_change_nothing(self, baseline):
        plan = FaultPlan(seed=3, latency_rate=0.5, latency_s=0.001)
        with faulty_models(SIM_MODELS, plan) as wrapped:
            grid = small_sweep(ThreadedExecutor(max_workers=6), faults=HEALING)
            assert sum(p.injected["latency"] for p in wrapped.values()) > 0
        assert grid.cells == baseline.cells

    def test_truncated_outputs_are_retried_not_cached(self, baseline):
        plan = FaultPlan(seed=5, truncate_rate=0.3, transient_times=1)
        with faulty_models(SIM_MODELS, plan) as wrapped:
            grid = small_sweep(SerialExecutor(), faults=HEALING)
            assert sum(p.injected["truncate"] for p in wrapped.values()) > 0
        assert grid.cells == baseline.cells


class TestIsolationAndResume:
    """Quarantine under `isolate`, then one resumed pass heals everything."""

    def test_quarantine_then_resume_heals_exactly_the_failed_units(self, tmp_path):
        isolate = FaultPolicy(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            on_failure="isolate",
        )
        # 3 consecutive strikes vs 2 attempts/run: run 1 quarantines the
        # struck keys, run 2's first attempt absorbs the last strike and
        # its retry succeeds
        fault_plan = FaultPlan(seed=6, transient_rate=0.3, transient_times=3)
        store = RunStore(tmp_path / "store")
        with faulty_models(SIM_MODELS, fault_plan):
            plan1, specs1 = resume_plan()
            first = run(plan1, store=store, faults=isolate)
            assert first.stats.units_failed > 0
            assert first.stats.generated + len(first.failures) == len(plan1)
            failed_keys = {f.key for f in first.failures.values()}
            # quarantined evals raise; untouched evals assemble fine
            hit, clean = 0, 0
            for spec in specs1.values():
                spec_uids = {
                    uid for _, uids in spec.sample_units for uid in uids
                }
                if spec_uids & set(first.failures):
                    with pytest.raises(UnitFailedError, match="quarantined"):
                        first.eval_result(spec)
                    hit += 1
                else:
                    first.eval_result(spec)
                    clean += 1
            assert hit > 0 and clean > 0
            # the failure set is durable: recorded on the manifest
            manifest = store.latest_manifest()
            assert manifest is not None
            assert {f.key for f in manifest.failures} == failed_keys

            plan2, specs2 = resume_plan()
            second = run(
                plan2, store=store, faults=isolate,
                resume_from=manifest.run_id,
            )
        # the resumed run re-executes exactly the quarantined units...
        assert second.stats.units_failed == 0
        assert second.stats.generated == len(failed_keys)
        assert second.manifest.resumed_from == manifest.run_id
        assert not second.manifest.failures
        # ...and the healed results are bit-identical to a fault-free run
        plan3, specs3 = resume_plan()
        reference = run(plan3)
        for cell, spec in specs2.items():
            healed = second.eval_result(spec)
            clean_eval = reference.eval_result(specs3[cell])
            assert [s.values for s in healed.samples[0].scores] == [
                s.values for s in clean_eval.samples[0].scores
            ]

    def test_skip_mode_yields_partial_results(self):
        skip = FaultPolicy(
            retry=RetryPolicy(max_attempts=1), on_failure="skip",
        )
        fault_plan = FaultPlan(seed=6, transient_rate=0.3, transient_times=9)
        with faulty_models(SIM_MODELS, fault_plan):
            plan, specs = resume_plan()
            outcome = run(plan, faults=skip)
        assert outcome.stats.units_failed > 0
        # no eval raises; quarantined epochs are simply absent
        total = sum(
            len(outcome.eval_result(spec).samples[0].scores)
            for spec in specs.values()
            if outcome.eval_result(spec).samples
        )
        assert total == len(plan) - outcome.stats.units_failed

    def test_resume_from_requires_matching_plan(self, tmp_path):
        from repro.errors import HarnessError

        store = RunStore(tmp_path / "store")
        plan1, _ = resume_plan()
        first = run(plan1, store=store)
        other = Plan("different")
        other.add_eval(configuration_task("henson"), "sim/o3", epochs=1)
        with pytest.raises(HarnessError, match="different plan"):
            run(other, store=store, resume_from=first.manifest.run_id)
        with pytest.raises(HarnessError, match="has no recorded run"):
            run(plan1, store=store, resume_from="run-does-not-exist")


class TestScoringWorkerDeath:
    def test_killed_workers_fall_back_inline(self):
        baseline = small_sweep(SerialExecutor())
        with ScoringPool(max_workers=2) as pool:
            pool.warm()
            assert kill_pool_workers(pool) > 0
            grid = run_configuration(
                models=MODELS, systems=SYSTEMS, epochs=2,
                scoring=pool,
            )
        assert grid.cells == baseline.cells


class TestStoreFaults:
    def test_clean_append_failure_loses_nothing_acked(self, tmp_path):
        store = FaultyStore(tmp_path / "store", fail_appends=[1])
        gen = _generation("k1", "first")
        store.put_generation(gen)
        with pytest.raises(OSError, match="injected append failure"):
            store.put_generation(_generation("k2", "second"))
        # the store object stays usable and the failed write left no trace
        store.put_generation(_generation("k3", "third"))
        store.close()
        reopened = RunStore(tmp_path / "store")
        assert reopened.get_generation("k1").completion == "first"
        assert reopened.get_generation("k2") is None
        assert reopened.get_generation("k3").completion == "third"
        assert reopened.verify().clean
        reopened.close()

    def test_torn_append_heals_on_next_write_and_reopen(self, tmp_path):
        store = FaultyStore(tmp_path / "store", torn_appends=[1])
        store.put_generation(_generation("k1", "first"))
        with pytest.raises(OSError, match="injected torn append"):
            store.put_generation(_generation("k2", "second"))
        # the next append terminates the torn tail before writing, so the
        # new record lands clean
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store.put_generation(_generation("k3", "third"))
            store.close()
            reopened = RunStore(tmp_path / "store")
            assert reopened.get_generation("k1").completion == "first"
            assert reopened.get_generation("k2") is None
            assert reopened.get_generation("k3").completion == "third"
            report = reopened.verify()
            # the healed tear shows up as exactly one corrupt record...
            assert not report.clean
            # ...which GC sweeps away for good
            reopened.gc()
            assert reopened.verify().clean
            reopened.close()

    def test_store_backed_sweep_survives_one_append_fault(self, tmp_path):
        # a mid-run store hiccup under an isolating policy must not take
        # down the sweep wholesale: the runner's cache writes go through
        # put_generations once per run, so fail the *scores* append and
        # assert the generations all landed
        store = FaultyStore(tmp_path / "store", fail_appends=[999])
        grid = small_sweep(SerialExecutor(), store=store)
        baseline = small_sweep(SerialExecutor())
        assert grid.cells == baseline.cells
        store.close()


def _generation(key, completion):
    from repro.llm.types import ModelUsage
    from repro.runtime.units import Generation

    return Generation(
        key=key,
        model="sim/o3",
        completion=completion,
        usage=ModelUsage(input_tokens=1, output_tokens=1),
    )
