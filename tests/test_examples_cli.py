"""The reproduce_tables example CLI must fail loudly, not traceback."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "examples" / "reproduce_tables.py"


def run_script(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else src
    )
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


@pytest.mark.parametrize(
    "args, expected",
    [
        (["--executor", "warp-drive"], "unknown executor 'warp-drive'"),
        (["--scheduler", "chaotic"], "unknown scheduler 'chaotic'"),
        (["--cache", "punchcards"], "unknown cache 'punchcards'"),
        (["--cache", "disk"], "--cache disk requires --store"),
        (["--store", str(SCRIPT)], "is not a directory"),
        (["--score-workers", "many"], "worker count or 'auto'"),
        (["--score-workers", "-1"], "must be >= 0"),
    ],
)
def test_unknown_knobs_exit_cleanly(args, expected):
    proc = run_script(*args)
    assert proc.returncode == 2
    assert expected in proc.stderr
    assert "Traceback" not in proc.stderr


def test_valid_factories_build_without_running():
    """The factory layer accepts every advertised knob value."""
    sys.path.insert(0, str(SCRIPT.parent))
    try:
        import reproduce_tables as cli
    finally:
        sys.path.pop(0)
    for name in cli.EXECUTORS:
        assert cli.make_executor(name, workers=2) is not None
    assert cli.make_scheduler("plan") is None
    assert cli.make_scheduler("adaptive") is not None
    for name in ("memory", "fs"):
        assert cli.make_cache(name, store=None) is not None
    with pytest.raises(cli.UsageError):
        cli.make_executor("bogus", workers=2)
    assert cli.make_scoring("0") is None
    pool = cli.make_scoring("2")
    assert pool is not None and pool.max_workers == 2
    pool.close()
    from repro.runtime import AdaptiveScoringPool

    auto = cli.make_scoring("auto")
    assert isinstance(auto, AdaptiveScoringPool)
    auto.close()
