"""Seed derivation: stability, sensitivity, and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import choice_weighted, derive_seed, rng_for, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1, "b") == derive_seed("a", 1, "b")

    def test_order_sensitive(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_label_sensitive(self):
        assert derive_seed("model", 0) != derive_seed("model", 1)

    def test_is_64_bit(self):
        for labels in (("x",), ("y", 2), ("z", "w", 3)):
            seed = derive_seed(*labels)
            assert 0 <= seed < 2**64

    def test_separator_prevents_concatenation_collision(self):
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_non_string_labels(self):
        assert derive_seed(1, 2.5, None) == derive_seed("1", "2.5", "None")


class TestRngFor:
    def test_same_labels_same_stream(self):
        a = rng_for("t", 1).random(8)
        b = rng_for("t", 1).random(8)
        assert np.allclose(a, b)

    def test_different_labels_different_stream(self):
        a = rng_for("t", 1).random(8)
        b = rng_for("t", 2).random(8)
        assert not np.allclose(a, b)


class TestSpawnStreams:
    def test_count_and_independence(self):
        streams = spawn_streams(123, 4)
        assert len(streams) == 4
        draws = [s.random(4).tolist() for s in streams]
        for i in range(4):
            for j in range(i + 1, 4):
                assert draws[i] != draws[j]


class TestChoiceWeighted:
    def test_zero_weights_fall_back_to_uniform(self):
        rng = np.random.default_rng(0)
        picks = {choice_weighted(rng, "abc", [0, 0, 0]) for _ in range(50)}
        assert picks <= set("abc") and len(picks) > 1

    def test_dominant_weight_wins(self):
        rng = np.random.default_rng(0)
        picks = [choice_weighted(rng, ["x", "y"], [1e9, 1e-9]) for _ in range(20)]
        assert picks.count("x") >= 19

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            choice_weighted(np.random.default_rng(0), [], [])
