"""Storage substrate: filesystem, HDF5-like hierarchy, BP steps."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store import BPFile, BPVarInfo, H5File


class TestSimFilesystem:
    def test_create_open(self, fs):
        fs.create("a.txt", "payload")
        assert fs.open("a.txt") == "payload"

    def test_open_missing_raises(self, fs):
        with pytest.raises(StoreError, match="no such file"):
            fs.open("missing")

    def test_no_overwrite(self, fs):
        fs.create("a", 1)
        with pytest.raises(StoreError, match="exists"):
            fs.create("a", 2, overwrite=False)

    def test_open_or_create_atomic(self, fs):
        first = fs.open_or_create("x", list)
        second = fs.open_or_create("x", list)
        assert first is second

    def test_wait_for_blocks_until_created(self, fs):
        results = []

        def waiter():
            results.append(fs.wait_for("late.h5", timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        fs.create("late.h5", "here")
        t.join(5.0)
        assert results == ["here"]

    def test_wait_for_timeout(self, fs):
        with pytest.raises(StoreError, match="timed out"):
            fs.wait_for("never", timeout=0.05)

    def test_listing_and_protocols(self, fs):
        fs.create("b", 1)
        fs.create("a", 2)
        assert fs.listdir() == ["a", "b"]
        assert "a" in fs
        assert len(fs) == 2
        assert list(fs) == ["a", "b"]

    def test_remove(self, fs):
        fs.create("a", 1)
        fs.remove("a")
        assert "a" not in fs
        with pytest.raises(StoreError):
            fs.remove("a")


class TestH5File:
    def test_write_read_roundtrip(self):
        h5 = H5File("t.h5")
        data = np.arange(6.0)
        h5.write("/group1/grid", data, step=0)
        ds = h5.read("/group1/grid")
        assert np.allclose(ds.data, data)
        assert ds.path == "/group1/grid"

    def test_path_normalization(self):
        h5 = H5File()
        h5.write("group1/grid", np.zeros(2))
        assert h5.exists("/group1/grid")

    def test_invalid_path(self):
        h5 = H5File()
        with pytest.raises(StoreError):
            h5.write("/", np.zeros(1))

    def test_step_versions(self):
        h5 = H5File()
        for step in range(3):
            h5.write("/d", np.full(2, step), step=step)
        assert h5.read("/d", step=1).data[0] == 1
        assert h5.read("/d").data[0] == 2  # latest
        assert h5.steps_of("/d") == [0, 1, 2]

    def test_missing_step_raises(self):
        h5 = H5File()
        h5.write("/d", np.zeros(1), step=0)
        with pytest.raises(StoreError, match="step 5"):
            h5.read("/d", step=5)

    def test_read_when_available_blocks(self):
        h5 = H5File()
        out = []

        def reader():
            out.append(h5.read_when_available("/d", step=0, timeout=5.0).data[0])

        t = threading.Thread(target=reader)
        t.start()
        h5.write("/d", np.array([7.0]), step=0)
        t.join(5.0)
        assert out == [7.0]

    def test_read_when_available_timeout(self):
        h5 = H5File()
        with pytest.raises(StoreError, match="timed out"):
            h5.read_when_available("/never", step=0, timeout=0.05)

    def test_paths_sorted(self):
        h5 = H5File()
        h5.write("/b/y", np.zeros(1))
        h5.write("/a/x", np.zeros(1))
        assert h5.paths() == ["/a/x", "/b/y"]
        assert list(h5) == ["/a/x", "/b/y"]

    def test_groups(self):
        h5 = H5File()
        group = h5.require_group("/g1/g2")
        assert group.path == "/g1/g2"
        h5.write("/g1/g2/d", np.zeros(1))
        assert "/g1/g2/d" in h5

    def test_attrs(self):
        h5 = H5File()
        ds = h5.write("/d", np.zeros(1), attrs={"units": "m"})
        assert ds.attrs["units"] == "m"

    def test_array_protocol(self):
        h5 = H5File()
        ds = h5.write("/d", np.arange(3))
        assert np.asarray(ds).sum() == 3


class TestBPFile:
    def _info(self, name: str) -> BPVarInfo:
        return BPVarInfo(name=name, dtype="double")

    def test_append_and_read(self):
        bp = BPFile("o.bp")
        bp.append_step({"x": (self._info("x"), np.arange(3))})
        step = bp.step(0)
        assert step.names() == ["x"]
        assert np.allclose(step.read("x"), [0, 1, 2])

    def test_missing_variable(self):
        bp = BPFile()
        bp.append_step({})
        with pytest.raises(StoreError):
            bp.step(0).read("nope")

    def test_finalize_blocks_appends(self):
        bp = BPFile()
        bp.finalize()
        with pytest.raises(StoreError, match="finalized"):
            bp.append_step({})

    def test_wait_for_step_end_of_stream(self):
        bp = BPFile()
        bp.append_step({"x": (self._info("x"), 1)})
        bp.finalize()
        assert bp.wait_for_step(0) is not None
        assert bp.wait_for_step(1) is None

    def test_wait_for_step_blocks(self):
        bp = BPFile()
        out = []

        def reader():
            out.append(bp.wait_for_step(0, timeout=5.0))

        t = threading.Thread(target=reader)
        t.start()
        bp.append_step({"x": (self._info("x"), 5)})
        t.join(5.0)
        assert out[0].read("x") == 5

    def test_variables_union(self):
        bp = BPFile()
        bp.append_step({"a": (self._info("a"), 1)})
        bp.append_step({"b": (self._info("b"), 2)})
        assert bp.variables() == ["a", "b"]

    def test_read_all(self):
        bp = BPFile()
        for v in (1, 2, 3):
            bp.append_step({"x": (self._info("x"), v)})
        assert bp.read_all("x") == [1, 2, 3]

    def test_step_out_of_range(self):
        bp = BPFile()
        with pytest.raises(StoreError, match="out of range"):
            bp.step(0)

    def test_scalar_info(self):
        info = BPVarInfo(name="t", dtype="int32")
        assert info.is_scalar
