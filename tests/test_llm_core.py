"""LLM substrate: types, tokenizer, sampling, registry, intent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GenerationError, UnknownModelError
from repro.llm import (
    ChatMessage,
    GenerateConfig,
    analyze_prompt,
    get_model,
    list_models,
    register_model,
)
from repro.llm.sampling import apply_temperature, sample, sample_jitter, softmax, top_p_filter
from repro.llm.tokenizer import count_tokens, encode


class TestTypes:
    def test_message_constructors(self):
        assert ChatMessage.user("hi").role == "user"
        assert ChatMessage.system("s").role == "system"
        assert ChatMessage.assistant("a").role == "assistant"

    def test_generate_config_validation(self):
        with pytest.raises(ValueError):
            GenerateConfig(temperature=-1)
        with pytest.raises(ValueError):
            GenerateConfig(top_p=0)
        with pytest.raises(ValueError):
            GenerateConfig(max_tokens=0)

    def test_paper_defaults(self):
        config = GenerateConfig()
        assert config.temperature == 0.2
        assert config.top_p == 0.95


class TestTokenizer:
    def test_short_words_single_token(self):
        assert encode("a bc def") == ["a", "bc", "def"]

    def test_long_words_chunked(self):
        assert encode("configuration") == ["conf", "igur", "atio", "n"]

    def test_punctuation_counted(self):
        assert count_tokens("a.b") == 3

    def test_count_scales_with_text(self):
        assert count_tokens("word " * 100) == 100


class TestSampling:
    def test_softmax_normalizes(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs[2] > probs[0]

    def test_temperature_zero_is_argmax(self):
        logits = np.array([0.1, 5.0, 0.1])
        for _ in range(5):
            assert sample(logits, np.random.default_rng(0), temperature=0.0) == 1

    def test_low_temperature_concentrates(self):
        logits = np.array([0.0, 1.0])
        rng = np.random.default_rng(0)
        cold = [sample(logits, rng, temperature=0.1) for _ in range(100)]
        rng = np.random.default_rng(0)
        hot = [sample(logits, rng, temperature=10.0) for _ in range(100)]
        assert sum(cold) > sum(hot)

    def test_top_p_filters_tail(self):
        probs = np.array([0.5, 0.3, 0.15, 0.05])
        kept = top_p_filter(probs, 0.8)
        assert kept[3] == 0.0
        assert kept.sum() == pytest.approx(1.0)

    def test_top_p_validation(self):
        with pytest.raises(ValueError):
            top_p_filter(np.array([1.0]), 0.0)

    def test_apply_temperature_validation(self):
        with pytest.raises(ValueError):
            apply_temperature(np.array([1.0]), -0.5)

    def test_jitter_zero_scale_or_temp(self):
        rng = np.random.default_rng(0)
        assert sample_jitter(rng, scale=0.0, temperature=1.0, top_p=1.0) == 0
        assert sample_jitter(rng, scale=2.0, temperature=0.0, top_p=1.0) == 0

    def test_jitter_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            j = sample_jitter(rng, scale=1.5, temperature=1.0, top_p=1.0)
            assert -5 <= j <= 5

    def test_empty_logits_raise(self):
        with pytest.raises(ValueError):
            sample(np.array([]), np.random.default_rng(0))


class TestRegistry:
    def test_builtin_models_registered(self):
        names = list_models()
        for model in ("o3", "gemini-2.5-pro", "claude-sonnet-4", "llama-3.3-70b"):
            assert f"sim/{model}" in names

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownModelError):
            get_model("sim/gpt-7")

    def test_instances_cached(self):
        a = get_model("sim/o3")
        b = get_model("sim/o3")
        assert a.provider is b.provider

    def test_custom_provider_registration(self):
        class Echo:
            name = "custom/echo"

            def generate(self, messages, config):
                from repro.llm.types import ModelOutput, ModelUsage

                return ModelOutput(
                    model=self.name,
                    completion=messages[-1].content,
                    usage=ModelUsage(1, 1),
                )

        register_model("custom/echo", Echo)
        out = get_model("custom/echo").generate("ping")
        assert out.completion == "ping"


class TestIntent:
    CFG = (
        "I would like to have a 3-node workflow consisting of one producer and "
        "two consumer tasks, where producer generates grid and particles "
        "datasets, consumer1 reads grid and consumer2 reads particles datasets. "
        "Producer requires 3 processes, and each consumer runs on a single "
        "process. Please provide the workflow configuration file for the "
        "Wilkins workflow system."
    )

    def test_configuration_intent(self):
        intent = analyze_prompt(self.CFG)
        assert intent.experiment == "configuration"
        assert intent.system == "wilkins"
        assert intent.variant == "original"
        assert not intent.fewshot

    def test_fewshot_detected(self):
        intent = analyze_prompt(
            self.CFG + "\n\nHere is an example configuration file for a simple "
            "2-node workflow for the Wilkins workflow system:\n```\ntasks:\n```"
        )
        assert intent.fewshot

    def test_annotation_intent(self):
        prompt = (
            "You are assisting in the development of a simple producer-consumer "
            "workflow using the ADIOS2 system. The producer task code is "
            "provided below. Annotate this task code in order to use it with "
            "the ADIOS2 system.\n\nint main() {}"
        )
        intent = analyze_prompt(prompt)
        assert intent.experiment == "annotation"
        assert intent.system == "adios2"

    def test_translation_intent_and_direction(self):
        prompt = (
            "Task codes are provided below for the PyCOMPSs workflow system "
            "for a 2-node workflow. Your task is to translate these codes to "
            "use the Parsl system.\n\n@task..."
        )
        intent = analyze_prompt(prompt)
        assert intent.experiment == "translation"
        assert intent.source == "pycompss"
        assert intent.target == "parsl"
        assert intent.cell_system == ("pycompss", "parsl")

    def test_no_system_raises(self):
        with pytest.raises(GenerationError, match="no known workflow system"):
            analyze_prompt("please write the configuration file for Airflow")

    def test_unclassifiable_raises(self):
        with pytest.raises(GenerationError):
            analyze_prompt("tell me about the Henson workflow system")
