"""Phase instrumentation: spans, profiles, report rendering, CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import warnings
from pathlib import Path

import pytest

from repro.errors import HarnessError

with warnings.catch_warnings():
    # this suite exercises the deprecated shim on purpose; the warning
    # itself is pinned in tests/test_obs.py
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro import perf
    from repro.perf import PhaseProfile, PhaseTotals, Profiler


class TestSpans:
    def test_span_without_profiler_is_a_noop(self):
        assert perf.active_profiler() is None
        with perf.span("anything"):
            pass  # must not raise, must not record anywhere

    def test_profiling_records_and_restores(self):
        with perf.profiling() as prof:
            assert perf.active_profiler() is prof
            with perf.span("alpha"):
                time.sleep(0.002)
        assert perf.active_profiler() is None
        profile = prof.snapshot()
        assert profile.calls("alpha") == 1
        assert profile.total_s("alpha") >= 0.002

    def test_spans_nest_into_paths(self):
        with perf.profiling() as prof:
            with perf.span("outer"):
                with perf.span("inner"):
                    pass
                with perf.span("inner"):
                    pass
        profile = prof.snapshot()
        assert profile.calls("outer") == 1
        assert profile.calls("outer/inner") == 2
        assert "inner" not in profile.phases  # only the nested path exists

    def test_nested_profiling_shadows_and_restores(self):
        with perf.profiling() as outer:
            with perf.profiling() as inner:
                assert perf.active_profiler() is inner
                with perf.span("x"):
                    pass
            assert perf.active_profiler() is outer
        assert inner.snapshot().calls("x") == 1
        assert outer.snapshot().calls("x") == 0

    def test_threads_aggregate_into_one_profiler(self):
        prof = Profiler()

        def work():
            for _ in range(50):
                with prof.span("worker"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert prof.snapshot().calls("worker") == 200

    def test_thread_nesting_is_per_thread(self):
        """A span opened in one thread never nests under another's."""
        prof = Profiler()
        inside = threading.Event()
        release = threading.Event()

        def outer_holder():
            with prof.span("held"):
                inside.set()
                release.wait(timeout=5)

        t = threading.Thread(target=outer_holder)
        t.start()
        inside.wait(timeout=5)
        with prof.span("independent"):
            pass
        release.set()
        t.join()
        profile = prof.snapshot()
        assert profile.calls("independent") == 1
        assert profile.calls("held/independent") == 0

    def test_record_folds_external_timings(self):
        prof = Profiler()
        prof.record("external", 1.5, calls=3)
        prof.record("external", 0.5)
        totals = prof.snapshot().phases["external"]
        assert totals.calls == 4
        assert totals.total_s == pytest.approx(2.0)
        assert totals.max_s == pytest.approx(1.5)

    def test_reset(self):
        prof = Profiler()
        with prof.span("x"):
            pass
        prof.reset()
        assert not prof.snapshot()


class TestPhaseProfile:
    def test_subtract_gives_the_delta(self):
        prof = Profiler()
        with prof.span("phase"):
            pass
        before = prof.snapshot()
        with prof.span("phase"):
            pass
        with prof.span("fresh"):
            pass
        delta = prof.snapshot().subtract(before)
        assert delta.calls("phase") == 1
        assert delta.calls("fresh") == 1

    def test_merged_sums(self):
        a = PhaseProfile({"p": PhaseTotals(calls=1, total_s=1.0, max_s=1.0)})
        b = PhaseProfile({"p": PhaseTotals(calls=2, total_s=0.5, max_s=0.4),
                          "q": PhaseTotals(calls=1, total_s=0.1, max_s=0.1)})
        merged = a.merged(b)
        assert merged.phases["p"] == PhaseTotals(calls=3, total_s=1.5, max_s=1.0)
        assert merged.calls("q") == 1

    def test_dict_roundtrip(self):
        prof = Profiler()
        with prof.span("a"):
            with prof.span("b"):
                pass
        profile = prof.snapshot()
        assert PhaseProfile.from_dict(profile.as_dict()) == profile

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(HarnessError):
            PhaseProfile.from_dict({"nope": 1})
        with pytest.raises(HarnessError):
            PhaseProfile.from_dict({"phases": {"p": {"calls": "x"}}})


class TestReport:
    def test_render_contains_phases_and_shares(self):
        prof = Profiler()
        with prof.span("generate"):
            with prof.span("store-io"):
                pass
        with prof.span("score"):
            pass
        text = perf.render_profile(prof.snapshot())
        assert "generate" in text and "score" in text
        assert "store-io" in text  # nested child rendered under its parent
        assert "share" in text

    def test_render_empty(self):
        assert "no phases" in perf.render_profile(PhaseProfile({}))

    def test_load_profile_accepts_wrapper_and_bare(self, tmp_path):
        prof = Profiler()
        with prof.span("x"):
            pass
        profile = prof.snapshot()
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(profile.as_dict()))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps(perf.profile_payload(profile, note="hi")))
        assert perf.load_profile(bare) == profile
        assert perf.load_profile(wrapped) == profile

    def test_load_profile_errors(self, tmp_path):
        with pytest.raises(HarnessError):
            perf.load_profile(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(HarnessError):
            perf.load_profile(bad)

    def test_render_manifest_shows_scoring_and_read_stats(self):
        payload = {
            "run_id": "run-123",
            "plan_name": "configuration",
            "plan_fingerprint": "ab" * 32,
            "executor": "SerialExecutor()",
            "wall_seconds": 1.5,
            "resumed_from": "run-122",
            "stats": {
                "total_units": 24,
                "generated": 0,
                "cache_hits": 24,
                "deduplicated": 0,
                "scores_computed": 0,
                "score_hits": 24,
                "score_workers": 3,
                "read_lru_hits": 8,
                "read_lru_misses": 16,
                "bytes_read": 2048,
            },
        }
        text = perf.render_manifest(payload)
        assert "run-123" in text
        assert "resumed" in text and "run-122" in text
        assert "3 worker process(es)" in text
        assert "8 hit(s) / 16 miss(es)" in text
        assert "33% hit rate" in text
        assert "2.0 KiB" in text

    def test_render_manifest_inline_and_zero_reads(self):
        text = perf.render_manifest(
            {"run_id": "r", "stats": {"total_units": 1, "score_workers": 0}}
        )
        assert "inline" in text
        assert "0 hit(s) / 0 miss(es)" in text
        assert "hit rate" not in text  # no division by zero, no bogus %
        assert "0 B" in text


class TestRuntimeIntegration:
    def test_run_attaches_per_run_profile(self):
        from repro.core.experiments.configuration import configuration_task
        from repro.runtime import Plan, run

        plan = Plan("perf-test")
        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        with perf.profiling():
            outcome = run(plan)
        profile = outcome.stats.profile
        assert profile is not None
        assert profile.calls("generate") == 1
        # score-cache consultation + assembly: two score spans per run
        assert profile.calls("score") == 2
        assert profile.calls("cache-get") == 1
        # without a profiler the field stays None (and costs nothing)
        assert run(plan).stats.profile is None

    def test_store_io_phases_nest_under_cache_phases(self, tmp_path):
        from repro.persist import RunStore
        from repro.runtime import Plan, run
        from repro.core.experiments.configuration import configuration_task

        plan = Plan("perf-store-test")
        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        with perf.profiling() as prof:
            with RunStore(tmp_path / "store") as store:
                run(plan, store=store)
        profile = prof.snapshot()
        assert profile.calls("cache-put/store-io/append") >= 1
        assert profile.calls("cache-get/store-io/read") >= 1

    def test_profile_survives_manifest_roundtrip(self, tmp_path):
        from repro.persist import RunStore
        from repro.runtime import Plan, run
        from repro.core.experiments.configuration import configuration_task

        plan = Plan("perf-manifest-test")
        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        with perf.profiling():
            with RunStore(tmp_path / "store") as store:
                outcome = run(plan, store=store)
        reloaded = RunStore(tmp_path / "store").manifests()[-1]
        assert reloaded.stats.profile == outcome.stats.profile
        assert reloaded.stats.profile.calls("generate") == 1


def run_cli(args: list[str]) -> subprocess.CompletedProcess:
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(src)
    return subprocess.run(
        [sys.executable, "-m", "repro.perf", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )


class TestCLI:
    def test_report_renders_saved_profile(self, tmp_path):
        prof = Profiler()
        with prof.span("generate"):
            pass
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(prof.snapshot().as_dict()))
        proc = run_cli(["report", str(path)])
        assert proc.returncode == 0
        assert "generate" in proc.stdout

    def test_report_renders_run_manifest_with_recorded_profile(self, tmp_path):
        from repro.core.experiments.configuration import configuration_task
        from repro.persist import RunStore
        from repro.runtime import Plan, run

        plan = Plan("perf-cli-manifest")
        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        with perf.profiling():
            with RunStore(tmp_path / "store") as store:
                run(plan, store=store)
        manifest_path = next((tmp_path / "store" / "manifests").glob("*.json"))
        proc = run_cli(["report", str(manifest_path)])
        assert proc.returncode == 0
        assert "run manifest" in proc.stdout
        assert "perf-cli-manifest" in proc.stdout
        assert "inline" in proc.stdout  # score_workers == 0
        assert "read-LRU" in proc.stdout
        # the per-run profile recorded in the manifest renders below it
        assert "phase profile (recorded with the run)" in proc.stdout
        assert "generate" in proc.stdout

    def test_missing_profile_is_a_clean_error(self, tmp_path):
        proc = run_cli(["report", str(tmp_path / "absent.json")])
        assert proc.returncode == 2
        assert "error:" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_unknown_command_rejected(self):
        proc = run_cli(["defrag"])
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
