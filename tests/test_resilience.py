"""The resilience layer: replication, failover, breakers, spill, drain.

Boots real servers (in-process event-loop threads for speed, genuine
``python -m repro.serve`` subprocesses where only ``kill -9`` proves
the point) and drives the :class:`ReplicatedRunStore` through replica
death, slow replicas, overload, total outage and recovery — asserting
the sweeps riding on top stay bit-identical throughout.
"""

from __future__ import annotations

import asyncio
import pathlib
import socket
import threading
import time

import pytest

from repro.core.experiments import run_configuration
from repro.errors import (
    BreakerOpenError,
    PersistError,
    RemoteStoreError,
    ServerOverloadedError,
    StoreError,
)
from repro.llm.types import ModelUsage
from repro.runtime import FaultPolicy, RetryPolicy, RunConfig
from repro.runtime.faults import FaultState
from repro.runtime.units import Generation
from repro.serve import (
    RemoteRetryBudget,
    RemoteRunStore,
    ReplicatedRunStore,
    ReplicatedStoreClient,
    StoreServer,
    open_store,
    parse_store_url,
)
from repro.serve.cli import main as serve_main
from repro.serve.sync import sync
from repro.testing import ChaosStoreServer, InProcessServer, ServerProcess

SMALL = dict(models=["o3", "llama-3.3-70b"], systems=["adios2", "wilkins"], epochs=2)

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05)

#: breaker knobs for tests that exercise trip-and-rejoin without sleeping long
FAST_BREAKER = dict(min_samples=2, failure_threshold=0.5, open_for_s=0.2)


def make_generation(i: int = 0) -> Generation:
    return Generation(
        key=f"{i:064x}",
        model="sim/gpt-4o",
        completion=f"replica payload #{i}",
        usage=ModelUsage(input_tokens=10 + i, output_tokens=20 + i),
        elapsed_s=0.125 * i,
    )


def multi_url(*servers) -> str:
    return ",".join(s.url() for s in servers)


def replicated(*servers, **options) -> ReplicatedRunStore:
    options.setdefault("retry", FAST_RETRY)
    options.setdefault("breaker", FAST_BREAKER)
    return open_store(multi_url(*servers), **options)


@pytest.fixture()
def pair(tmp_path):
    a = InProcessServer(tmp_path / "replica-a")
    b = InProcessServer(tmp_path / "replica-b")
    yield a, b
    a.stop()
    b.stop()


class TestMultiUrl:
    def test_parse_multi(self):
        assert parse_store_url("tcp://a:1,tcp://b:2") == (
            "multi",
            [("tcp", ("a", 1)), ("tcp", ("b", 2))],
        )
        assert parse_store_url("tcp://a:1, unix:///tmp/b.sock") == (
            "multi",
            [("tcp", ("a", 1)), ("unix", "/tmp/b.sock")],
        )

    def test_single_entry_and_local_parts_refused(self):
        with pytest.raises(StoreError, match="at least two"):
            parse_store_url("tcp://a:1,")
        with pytest.raises(StoreError, match="remote URL"):
            parse_store_url("tcp://a:1,runs/local")

    def test_open_store_builds_replicated(self, pair):
        a, b = pair
        store = replicated(a, b)
        try:
            assert isinstance(store, ReplicatedRunStore)
            assert store.url == multi_url(a, b)
            assert store.client.describe_address() == multi_url(a, b)
            assert set(store.replica_states.values()) == {"closed"}
        finally:
            store.close()

    def test_run_config_from_url(self, pair):
        config = RunConfig.from_url(multi_url(*pair))
        try:
            assert isinstance(config.store, ReplicatedRunStore)
        finally:
            config.store.close()

    def test_replicated_client_needs_replicas_and_positive_hedge(self):
        with pytest.raises(StoreError, match="at least one replica"):
            ReplicatedStoreClient([])
        with pytest.raises(StoreError, match="hedge_s"):
            ReplicatedStoreClient([("tcp", ("h", 1))], hedge_s=0)


class TestReplication:
    def test_writes_land_on_every_replica(self, pair):
        a, b = pair
        gens = [make_generation(i) for i in range(6)]
        with replicated(a, b) as store:
            store.put_generations(gens)
        for server in (a, b):
            with open_store(server.url(), retry=FAST_RETRY) as single:
                found = single.get_generations([g.key for g in gens])
                assert len(found) == 6

    def test_write_succeeds_with_one_replica_down(self, pair):
        a, b = pair
        b.stop()
        gens = [make_generation(i) for i in range(4)]
        with replicated(a, b) as store:
            store.put_generations(gens)
            found = store.get_generations([g.key for g in gens])
        assert len(found) == 4

    def test_fanout_gc_and_verify_cover_both_replicas(self, pair):
        a, b = pair
        with replicated(a, b) as store:
            store.put_generations([make_generation(i) for i in range(5)])
            report = store.verify()
            gc = store.gc()
        # every replica holds every record, so the fanned-out audit
        # counts each one twice — and stays clean
        assert report.clean
        assert report.generations == 10
        assert gc.records_after == 10

    def test_keys_inventory_reads_one_replica(self, pair):
        a, b = pair
        gens = [make_generation(i) for i in range(3)]
        with replicated(a, b) as store:
            store.put_generations(gens)
            assert store.keys("gen") == sorted(g.key for g in gens)


class TestFailover:
    def test_reads_fail_over_when_a_replica_dies(self, pair):
        a, b = pair
        gens = [make_generation(i) for i in range(8)]
        with replicated(a, b) as store:
            store.put_generations(gens)
            a.stop()  # the preferred replica dies
            found = store.get_generations([g.key for g in gens])
            assert len(found) == 8
            assert store.client.failovers >= 1

    def test_breaker_opens_then_restart_rejoins(self, pair, tmp_path):
        a, b = pair
        gens = [make_generation(i) for i in range(4)]
        with replicated(a, b) as store:
            store.put_generations(gens)
            a.stop()
            # enough traffic to trip a's breaker (min_samples=2)
            for _ in range(3):
                store.get_generations([gens[0].key])
            assert store.replica_states[a.url()] == "open"
            # healthy reads now skip a entirely: no more failover churn
            before = store.client.failovers
            store.get_generations([gens[1].key])
            assert store.client.failovers == before

            a = a.restart()
            time.sleep(0.25)  # past open_for_s: next call is the probe
            found = store.get_generations([g.key for g in gens])
            assert len(found) == 4
            assert store.replica_states[a.url()] == "closed"
            assert store.client.health.get(a.url()).rejoined_total == 1
        a.stop()

    def test_total_outage_without_journal_raises_typed(self, pair):
        a, b = pair
        a.stop()
        b.stop()
        with replicated(a, b) as store:
            with pytest.raises(RemoteStoreError, match="no replica"):
                store.put_generations([make_generation(0)])
            # ping is not spillable either way
            with pytest.raises(RemoteStoreError, match="no replica"):
                store.ping()

    def test_deterministic_server_errors_never_fail_over(self, pair):
        with replicated(*pair) as store:
            before = store.client.failovers
            with pytest.raises(PersistError, match="unknown record kind"):
                store.get_records("nope", ["k"])
            assert store.client.failovers == before


class TestHedgedReads:
    def test_slow_replica_is_hedged_around(self, tmp_path):
        slow = InProcessServer(
            tmp_path / "slow",
            server=ChaosStoreServer(tmp_path / "slow", op_delay_s=0.5),
        )
        fast = InProcessServer(tmp_path / "fast")
        try:
            gens = [make_generation(i) for i in range(4)]
            # writes fan out, so both replicas hold the records
            with replicated(slow, fast) as store:
                store.put_generations(gens)
            with replicated(slow, fast, hedge_s=0.05) as store:
                t0 = time.perf_counter()
                found = store.get_generations([g.key for g in gens])
                elapsed = time.perf_counter() - t0
                assert len(found) == 4
                assert store.client.hedged_reads >= 1
            # the fast replica answered: nowhere near the 0.5s stall
            assert elapsed < 0.4
        finally:
            slow.stop()
            fast.stop()


def _slow_ping(server: StoreServer, request):
    time.sleep(0.1)
    return StoreServer._op_ping(server, request)


class _SlowPingServer(StoreServer):
    _OPS = {**StoreServer._OPS, "ping": _slow_ping}


class TestAdmissionControl:
    def test_max_inflight_validated(self, tmp_path):
        with pytest.raises(PersistError, match="max_inflight"):
            StoreServer(tmp_path / "s", max_inflight=0)

    def test_overload_refusal_is_typed_and_clients_retry_through(self, tmp_path):
        server = InProcessServer(
            tmp_path / "srv",
            server=_SlowPingServer(tmp_path / "srv", shards=1, max_inflight=1),
        )
        patient = RetryPolicy(max_attempts=8, base_delay=0.05, max_delay=0.2)
        results, errors = [], []

        def ping():
            try:
                with open_store(server.url(), retry=patient) as remote:
                    results.append(remote.ping()["server"])
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=ping) for _ in range(3)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            assert results == ["repro.serve/1"] * 3
            refused = server.server._ops_total.value(op="ping", status="refused")
            assert refused >= 1  # the gate actually fired
        finally:
            server.stop()

    def test_exhausted_retries_raise_the_overload_error(self, tmp_path):
        server = InProcessServer(tmp_path / "srv", shards=1)
        try:
            server.server.drain()  # refuses forever: retries must give up
            with open_store(server.url(), retry=FAST_RETRY) as remote:
                with pytest.raises(ServerOverloadedError, match="draining"):
                    remote.ping()
            # typed and retryable: FaultPolicy-armed sweeps back off on it
            assert RetryPolicy().is_retryable(ServerOverloadedError("x"))
        finally:
            server.stop()


class TestDrain:
    def test_drain_refuses_new_work_and_wait_drained_settles(self, tmp_path):
        server = StoreServer(tmp_path / "srv", shards=1)
        assert server.handle({"op": "ping"})["ok"]
        server.drain()
        assert server.draining
        refused = server.handle({"op": "ping"})
        assert not refused["ok"]
        assert refused["error_type"] == "ServerOverloadedError"
        assert asyncio.run(server.wait_drained(timeout_s=1.0))
        assert server.inflight == 0
        for store in server.stores:
            store.close()


class TestDegradedMode:
    def test_outage_sweep_spills_then_sync_converges(self, pair, tmp_path):
        a, b = pair
        journal = tmp_path / "journal"
        reference = run_configuration(**SMALL)

        a.stop()
        b.stop()  # 100% unreachable: the sweep must complete offline
        with replicated(a, b, spill_root=journal) as store:
            offline = run_configuration(**SMALL, store=store)
            assert store.client.spilled_batches > 0
            assert store.client.degraded  # every breaker open by now
        for row in reference.row_keys:
            for model in reference.models:
                assert offline.cell(row, model) == reference.cell(row, model)
        assert (journal / "shard-00").exists()

        # recovery: servers return, sync pushes the journal everywhere
        a = a.restart()
        b = b.restart()
        summary = sync([a.url(), b.url()], journal=journal)
        assert summary["journal_records"] > 0
        assert summary["journal_manifests"] == 1

        # both replicas converged on the journal's inventory
        inventories = []
        for server in (a, b):
            with open_store(server.url(), retry=FAST_RETRY) as single:
                inventories.append(
                    (single.keys("gen"), single.keys("score"))
                )
                assert single.latest_manifest() is not None
        assert inventories[0] == inventories[1]
        assert len(inventories[0][0]) > 0

        # a warm sweep against the healed replicas regenerates nothing
        with replicated(a, b) as store:
            warm = run_configuration(**SMALL, store=store)
            manifest = store.latest_manifest()
        assert manifest.stats.generated == 0
        for row in reference.row_keys:
            for model in reference.models:
                assert warm.cell(row, model) == reference.cell(row, model)
        a.stop()
        b.stop()

    def test_reads_after_outage_see_spilled_writes(self, pair, tmp_path):
        a, b = pair
        a.stop()
        b.stop()
        gens = [make_generation(i) for i in range(3)]
        with replicated(a, b, spill_root=tmp_path / "journal") as store:
            store.put_generations(gens)  # spilled
            a = a.restart()
            b = b.restart()
            time.sleep(0.25)  # cooldown: replicas rejoin via probes
            # the replicas never saw these writes; the journal overlay
            # keeps the client's own history visible
            found = store.get_generations([g.key for g in gens])
            assert len(found) == 3
        a.stop()
        b.stop()

    def test_sync_cli_prunes_the_journal(self, pair, tmp_path, capsys):
        a, b = pair
        journal = tmp_path / "journal"
        a.stop()
        b.stop()
        with replicated(a, b, spill_root=journal) as store:
            store.put_generations([make_generation(i) for i in range(4)])
        a = a.restart()
        b = b.restart()
        code = serve_main(
            ["sync", a.url(), b.url(), "--journal", str(journal), "--prune"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replicas converged" in out
        assert f"pruned journal {journal}" in out
        assert not journal.exists()
        with open_store(b.url(), retry=FAST_RETRY) as single:
            assert len(single.keys("gen")) == 4
        a.stop()
        b.stop()

    def test_sync_is_replica_to_replica_anti_entropy(self, pair):
        a, b = pair
        gens = [make_generation(i) for i in range(5)]
        with open_store(a.url(), retry=FAST_RETRY) as only_a:
            only_a.put_generations(gens)  # b never sees these
        summary = sync([a.url(), b.url()])
        assert summary["replicas"][b.url()]["records"] == 5
        assert summary["replicas"][a.url()]["records"] == 0
        with open_store(b.url(), retry=FAST_RETRY) as single:
            assert len(single.get_generations([g.key for g in gens])) == 5

    def test_sync_refuses_local_and_multi_urls(self, tmp_path):
        with pytest.raises(StoreError, match="individual replica URLs"):
            sync([str(tmp_path / "local")])
        with pytest.raises(StoreError, match="individual replica URLs"):
            sync(["tcp://a:1,tcp://b:2"])


class TestSharedCounters:
    def test_counter_add_accumulates_across_clients(self, pair):
        a, _ = pair
        with open_store(a.url(), retry=FAST_RETRY) as one:
            with open_store(a.url(), retry=FAST_RETRY) as two:
                assert one.counter_add("campaign", 1) == 1
                assert two.counter_add("campaign", 2) == 3
                assert one.counter_add("campaign", 0) == 3  # read-only probe

    def test_counter_name_validated_server_side(self, pair):
        a, _ = pair
        with open_store(a.url(), retry=FAST_RETRY) as remote:
            with pytest.raises(PersistError, match="counter name"):
                remote.counter_add("", 1)

    def test_remote_retry_budget_is_shared_across_fault_states(self, pair):
        a, _ = pair
        with open_store(a.url(), retry=FAST_RETRY) as remote:
            budget = RemoteRetryBudget(remote, "sweep-7", limit=2)
            # two "worker processes" drawing from one campaign-wide pool
            worker1 = FaultState(FaultPolicy(shared_budget=budget))
            worker2 = FaultState(FaultPolicy(shared_budget=budget))
            assert worker1._acquire_retry("u1", 0.0)
            assert worker2._acquire_retry("u2", 0.0)
            assert not worker1._acquire_retry("u3", 0.0)  # pool spent
            assert worker1.budget_exhausted
            assert budget.spent() == 3  # 2 grants + 1 refused draw

    def test_unreachable_budget_fails_open(self):
        dead = RemoteRunStore(
            "tcp://127.0.0.1:1",
            ("tcp", ("127.0.0.1", 1)),
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
        )
        try:
            budget = RemoteRetryBudget(dead, "orphan", limit=1)
            state = FaultState(
                FaultPolicy(retry_budget=1, shared_budget=budget)
            )
            # the counter server is gone: the local budget governs
            assert state._acquire_retry("u1", 0.0)
            assert not state._acquire_retry("u2", 0.0)
        finally:
            dead.close()

    def test_budget_limit_validated(self, pair):
        a, _ = pair
        with open_store(a.url(), retry=FAST_RETRY) as remote:
            with pytest.raises(StoreError, match="limit"):
                RemoteRetryBudget(remote, "x", limit=-1)


class TestServerProcessChaos:
    """Real subprocesses: only ``kill -9`` proves crash-tolerance."""

    def test_sweep_survives_sigkill_of_one_replica(self, tmp_path):
        reference = run_configuration(**SMALL)
        with ServerProcess(tmp_path / "proc-a") as a:
            with ServerProcess(tmp_path / "proc-b") as b:
                killer = threading.Timer(0.05, a.kill)
                store = replicated(a, b)
                try:
                    killer.start()
                    grid = run_configuration(**SMALL, store=store)
                finally:
                    killer.cancel()
                    store.close()
                assert not a.alive
                for row in reference.row_keys:
                    for model in reference.models:
                        assert grid.cell(row, model) == reference.cell(
                            row, model
                        )
                # the survivor holds the full sweep: a warm run against it
                # alone regenerates nothing
                with open_store(b.url(), retry=FAST_RETRY) as survivor:
                    warm = run_configuration(**SMALL, store=survivor)
                    manifest = survivor.latest_manifest()
                assert manifest.stats.generated == 0
                for row in reference.row_keys:
                    for model in reference.models:
                        assert warm.cell(row, model) == reference.cell(
                            row, model
                        )

    def test_sigterm_drains_and_cleans_up(self, tmp_path):
        sock = tmp_path / "drain.sock"
        server = ServerProcess(
            tmp_path / "proc", extra_args=["--unix", str(sock)]
        )
        try:
            assert sock.exists()
            assert server.ready_file.exists()
            code = server.terminate()
            assert code == 0
            # graceful exit removed the socket and the ready file
            assert not sock.exists()
            assert not server.ready_file.exists()
        finally:
            server.kill()


class TestUnixSocketHygiene:
    def test_stale_socket_file_is_replaced_on_bind(self, tmp_path):
        path = tmp_path / "stale.sock"
        # a previous process died hard and left its socket file behind
        left_behind = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        left_behind.bind(str(path))
        left_behind.close()
        assert path.exists()

        async def boot() -> None:
            server = StoreServer(tmp_path / "srv", shards=1)
            bound = await server.start_unix(path)
            assert pathlib.Path(bound).exists()
            await server.aclose()

        asyncio.run(boot())

    def test_regular_file_at_socket_path_is_refused(self, tmp_path):
        path = tmp_path / "precious.txt"
        path.write_text("not a socket")

        async def boot() -> None:
            server = StoreServer(tmp_path / "srv", shards=1)
            try:
                with pytest.raises(PersistError, match="non-socket"):
                    await server.start_unix(path)
            finally:
                await server.aclose()

        asyncio.run(boot())
        assert path.read_text() == "not a socket"  # untouched
