"""Pipelined process-pool scoring: equivalence, fallbacks, stats."""

from __future__ import annotations

import pytest

from repro.core.experiments import run_configuration
from repro.core.scorers import CodeSimilarityScorer, Score
from repro.core.task import evaluate
from repro.errors import HarnessError
from repro.runtime import (
    AdaptiveScoringPool,
    AsyncExecutor,
    BatchingExecutor,
    Plan,
    ScoreCache,
    ScoringPool,
    SerialExecutor,
    ThreadedExecutor,
    run,
)

SMALL = dict(models=["o3", "llama-3.3-70b"], systems=["adios2", "wilkins"], epochs=2)


@pytest.fixture(scope="module")
def pool():
    """One shared process pool: spawn start-up is paid once per module."""
    with ScoringPool(max_workers=2) as shared:
        shared.warm()
        yield shared


def small_plan(name: str = "scoring-test") -> Plan:
    from repro.core.experiments.configuration import configuration_task

    plan = Plan(name)
    plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=2)
    return plan


def grids_equal(a, b) -> bool:
    return all(
        a.cell(row, model) == b.cell(row, model)
        for row in a.row_keys
        for model in a.models
    )


class TestScoringPool:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(HarnessError):
            ScoringPool(0)

    def test_submit_computes_in_worker_process(self, pool):
        scorer = CodeSimilarityScorer()
        handle = pool.submit(scorer, "print('hello')", "print('hello')")
        score = handle.result()
        assert isinstance(score, Score)
        assert score["bleu"] == pytest.approx(100.0)
        # identical to the inline computation, bit for bit
        assert score == scorer("print('hello')", "print('hello')")

    def test_unpicklable_scorer_falls_back_inline(self, pool):
        scorer = CodeSimilarityScorer(extractor=lambda text: text)
        handle = pool.submit(scorer, "a b c", "a b c")
        assert isinstance(handle.result(), Score)
        # the fallback is cached per scorer: a second submit stays inline
        assert pool._picklable[id(scorer)] is False

    def test_closed_pool_context_manager_raises(self):
        closing = ScoringPool(1)
        closing.close()
        with pytest.raises(HarnessError):
            with closing:
                pass

    def test_close_is_idempotent(self):
        p = ScoringPool(1)
        p.close()
        p.close()


class TestRunnerIntegration:
    def test_grid_bit_identical_across_executors_with_pool(self, pool):
        """Acceptance: Table-1 grid identical serial/threaded/async/batched
        with the process-pool scorer enabled."""
        baseline = run_configuration(**SMALL)
        for executor in (
            SerialExecutor(),
            ThreadedExecutor(4),
            AsyncExecutor(4),
            BatchingExecutor(2),
        ):
            grid = run_configuration(**SMALL, executor=executor, scoring=pool)
            assert grids_equal(baseline, grid), repr(executor)

    def test_stats_match_inline_scoring(self, pool):
        inline = run(small_plan())
        pooled = run(small_plan(), scoring=pool)
        assert pooled.stats.total_units == inline.stats.total_units
        assert pooled.stats.scores_computed == inline.stats.scores_computed
        assert pooled.stats.score_hits == inline.stats.score_hits
        for uid in inline.results:
            assert pooled[uid].score == inline[uid].score

    def test_warm_score_cache_skips_the_pool(self, pool):
        cache = ScoreCache()
        first = run(small_plan(), score_cache=cache, scoring=pool)
        second = run(small_plan(), score_cache=cache, scoring=pool)
        assert first.stats.scores_computed > 0
        assert second.stats.scores_computed == 0
        assert second.stats.score_hits == second.stats.total_units

    def test_streaming_executor_overlaps(self, pool):
        """ThreadedExecutor streams completions into the pool; results match."""
        inline = run(small_plan(), executor=ThreadedExecutor(4))
        pooled = run(small_plan(), executor=ThreadedExecutor(4), scoring=pool)
        for uid in inline.results:
            assert pooled[uid].score == inline[uid].score

    def test_evaluate_accepts_scoring(self, pool):
        from repro.core.experiments.configuration import configuration_task

        task = configuration_task("adios2")
        inline = evaluate(task, "sim/o3", epochs=2)
        pooled = evaluate(task, "sim/o3", epochs=2, scoring=pool)
        assert pooled.aggregate("bleu") == inline.aggregate("bleu")

    def test_store_and_pool_compose(self, pool, tmp_path):
        """Pool-computed scores persist; the warm pass needs neither."""
        from repro.persist import RunStore

        with RunStore(tmp_path / "store") as store:
            run(small_plan(), store=store, scoring=pool)
        with RunStore(tmp_path / "store") as store:
            warm = run(small_plan(), store=store, scoring=pool)
        assert warm.stats.generated == 0
        assert warm.stats.scores_computed == 0


class TestKernelGridIdentity:
    """Acceptance for the vectorized-kernel PR: the *full* Table-1 grid is
    bit-identical across every executor with the numpy kernels, batched
    group scoring, and an adaptive pool in play."""

    def test_full_table1_grid_identical_across_executors(self, pool):
        from repro.metrics import kernels_enabled

        assert kernels_enabled()  # the fast path, not the fallback
        baseline = run_configuration(epochs=2)  # all models × all systems
        for make in (
            lambda: SerialExecutor(),
            lambda: ThreadedExecutor(4),
            lambda: AsyncExecutor(4),
            lambda: BatchingExecutor(2),
        ):
            grid = run_configuration(epochs=2, executor=make(), scoring=pool)
            assert grids_equal(baseline, grid), repr(make())

    def test_full_grid_identical_with_kernels_disabled(self, monkeypatch):
        """The compiled fallback scores the same grid bit for bit."""
        from repro.metrics.compiled import compile_reference

        fast = run_configuration(epochs=2)
        monkeypatch.setenv("REPRO_METRIC_KERNELS", "0")
        compile_reference.cache_clear()
        slow = run_configuration(epochs=2)
        assert grids_equal(fast, slow)

    def test_adaptive_pool_matches_inline_and_records_choice(self):
        with AdaptiveScoringPool(max_workers=2) as adaptive:
            baseline = run_configuration(**SMALL)
            # cold: no cost observations yet, so the run scores inline
            cold = run_configuration(**SMALL, scoring=adaptive)
            assert adaptive.last_workers == 0
            assert grids_equal(baseline, cold)
            # the cost model now has observations; whatever worker count
            # it picks, the grid must not move
            warm = run_configuration(**SMALL, scoring=adaptive)
            assert 0 <= adaptive.last_workers <= 2
            assert grids_equal(baseline, warm)

    def test_adaptive_pool_stats_flow_into_the_manifest(self, tmp_path):
        from repro.persist import RunStore

        with AdaptiveScoringPool(max_workers=2) as adaptive:
            with RunStore(tmp_path / "store") as store:
                run(small_plan(), store=store, scoring=adaptive)
            with RunStore(tmp_path / "store") as store:
                outcome = run(small_plan(), store=store, scoring=adaptive)
        manifest = outcome.manifest
        assert manifest.stats.score_workers == adaptive.last_workers
        # the warm pass re-read its generations from store segments
        assert manifest.stats.read_lru_misses > 0
        assert manifest.stats.bytes_read > 0


class TestExecutorStreaming:
    def test_serial_execute_iter_matches_execute(self):
        plan = small_plan()
        units = plan.units
        serial = SerialExecutor()
        streamed = {gen.key: gen for gen in serial.execute_iter(units)}
        executed = serial.execute(units)
        assert {k: g.completion for k, g in streamed.items()} == {
            k: g.completion for k, g in executed.items()
        }

    def test_threaded_execute_iter_matches_execute(self):
        plan = small_plan()
        units = plan.units
        with ThreadedExecutor(4) as threaded:
            streamed = {gen.key: gen for gen in threaded.execute_iter(units)}
            assert set(streamed) == {unit.key for unit in units}
            executed = threaded.execute(units)
        assert {k: g.completion for k, g in streamed.items()} == {
            k: g.completion for k, g in executed.items()
        }

    def test_threaded_execute_iter_empty(self):
        with ThreadedExecutor(2) as threaded:
            assert list(threaded.execute_iter([])) == []
