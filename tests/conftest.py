"""Shared test fixtures: isolated filesystems and clean global runtimes."""

from __future__ import annotations

import pytest

from repro.store import SimFilesystem, reset_default_filesystem


@pytest.fixture()
def fs() -> SimFilesystem:
    """A private in-memory filesystem."""
    return SimFilesystem()


@pytest.fixture()
def clean_default_fs() -> SimFilesystem:
    """Reset and return the process-wide default filesystem."""
    return reset_default_filesystem()


@pytest.fixture()
def compss_runtime(fs):
    """A fresh PyCOMPSs runtime bound to a private filesystem."""
    from repro.workflows.pycompss import reset_runtime

    runtime = reset_runtime(fs=fs)
    yield runtime
    runtime.shutdown()


@pytest.fixture()
def parsl_kernel():
    """A loaded Parsl DataFlowKernel, cleared afterwards."""
    from repro.workflows.parsl_sim import Config, ThreadPoolExecutor, clear, load

    kernel = load(Config(executors=[ThreadPoolExecutor(max_threads=4)]))
    yield kernel
    clear()
