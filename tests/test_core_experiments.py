"""Experiment builders, grids, few-shot comparison, repair loop, reporting."""

from __future__ import annotations

import pytest

from repro.core.experiments import (
    CellResult,
    ExperimentGrid,
    annotation_task,
    configuration_task,
    run_configuration,
    run_fewshot,
    run_prompt_sensitivity,
    translation_task,
)
from repro.core.repair import RepairLoop
from repro.data import MODELS
from repro.data.prompts import get_template
from repro.errors import HarnessError
from repro.metrics.stats import Aggregate
from repro.reporting import render_fewshot_table, render_grid_table, render_heatmap


def agg(mean: float) -> Aggregate:
    return Aggregate(mean=mean, stderr=0.5, n=5)


class TestTaskBuilders:
    def test_configuration_excludes_parsl_pycompss(self):
        for system in ("parsl", "pycompss"):
            with pytest.raises(HarnessError, match="execution"):
                configuration_task(system)

    def test_annotation_excludes_wilkins(self):
        with pytest.raises(HarnessError, match="Wilkins"):
            annotation_task("wilkins")

    def test_translation_direction_whitelist(self):
        with pytest.raises(HarnessError):
            translation_task("adios2", "parsl")

    def test_annotation_language_selection(self):
        assert "int main" in annotation_task("henson").dataset[0].metadata["code"]
        assert "import numpy" in annotation_task("parsl").dataset[0].metadata["code"]

    def test_translation_carries_source_code(self):
        task = translation_task("adios2", "henson")
        meta = task.dataset[0].metadata
        assert "adios2_put" in meta["code"]
        assert "henson_save_array" in task.dataset[0].target


class TestExperimentGrid:
    def make(self) -> ExperimentGrid:
        grid = ExperimentGrid("g", row_keys=["a", "b"], models=["m1", "m2"])
        grid.add("a", "m1", CellResult(agg(60), agg(65)))
        grid.add("a", "m2", CellResult(agg(40), agg(45)))
        grid.add("b", "m1", CellResult(agg(20), agg(25)))
        grid.add("b", "m2", CellResult(agg(30), agg(35)))
        return grid

    def test_overall_by_model(self):
        overall = self.make().overall_by_model()
        assert overall["m1"].bleu.mean == pytest.approx(40.0)
        assert overall["m2"].bleu.mean == pytest.approx(35.0)

    def test_overall_by_row(self):
        overall = self.make().overall_by_row()
        assert overall["a"].bleu.mean == pytest.approx(50.0)

    def test_best_model_row(self):
        grid = self.make()
        assert grid.best_model() == "m1"
        assert grid.best_row() == "a"

    def test_grand_overall(self):
        assert self.make().grand_overall().bleu.mean == pytest.approx(37.5)

    def test_missing_cell_raises(self):
        with pytest.raises(HarnessError, match="no cell"):
            self.make().cell("z", "m1")


class TestRunners:
    def test_run_configuration_small(self):
        grid = run_configuration(
            models=["claude-sonnet-4"], systems=["wilkins"], epochs=1
        )
        cell = grid.cell("wilkins", "claude-sonnet-4")
        assert 30.0 < cell.bleu.mean < 45.0  # paper: 36.8

    def test_run_fewshot_gain(self):
        comparison = run_fewshot(models=["o3"], systems=["wilkins"], epochs=1)
        assert comparison.gain("o3") > 30.0

    def test_prompt_sensitivity_structure(self):
        results = run_prompt_sensitivity(
            "configuration",
            models=["claude-sonnet-4"],
            variants=["original", "detailed"],
            conditions=["henson"],
            epochs=1,
        )
        assert set(results) == {"henson"}
        assert set(results["henson"]) == {"original", "detailed"}


class TestRepairLoop:
    REQUEST = get_template("configuration", "original").body.format(system="Wilkins")

    def test_converges_for_o3(self):
        outcome = RepairLoop("sim/o3", "wilkins", max_iterations=4).run(self.REQUEST)
        assert outcome.converged
        assert outcome.iterations >= 1
        # final artifact parses as a real Wilkins config
        from repro.workflows.wilkins import parse_wilkins_yaml

        config = parse_wilkins_yaml(outcome.final_artifact)
        assert config.task("producer").nprocs == 3

    def test_first_attempt_uses_raw_request(self):
        outcome = RepairLoop("sim/o3", "wilkins").run(self.REQUEST)
        assert outcome.attempts[0].prompt == self.REQUEST

    def test_repair_prompt_carries_diagnostics(self):
        outcome = RepairLoop("sim/o3", "wilkins", max_iterations=3).run(self.REQUEST)
        if outcome.iterations > 1:
            assert "rejected" in outcome.attempts[1].prompt
            assert "example configuration file" in outcome.attempts[1].prompt

    def test_system_without_config_validator_rejected(self):
        with pytest.raises(HarnessError, match="no configuration validator"):
            RepairLoop("sim/o3", "parsl")

    def test_invalid_budget(self):
        with pytest.raises(HarnessError):
            RepairLoop("sim/o3", "wilkins", max_iterations=0)


class TestReporting:
    def test_grid_table_renders_all_rows(self):
        grid = run_configuration(models=["claude-sonnet-4"], systems=["wilkins"], epochs=1)
        text = render_grid_table(grid, "Table X")
        assert "Wilkins" in text and "Overall" in text and "±" in text

    def test_fewshot_table(self):
        comparison = run_fewshot(models=["claude-sonnet-4"], systems=["wilkins"], epochs=1)
        text = render_fewshot_table(comparison, "Table 5")
        assert "zero-shot" in text and "Few-shot" in text

    def test_heatmap(self):
        data = {
            "original": {m: 50.0 for m in MODELS},
            "detailed": {m: 60.0 for m in MODELS},
        }
        text = render_heatmap("H", data, variants=["original", "detailed"])
        assert "Gemini" in text and "50.0" in text
