"""Property-based tests (hypothesis) for the simulator's core invariants.

These guard the properties the whole reproduction depends on:

* corruption curves start at 100 and are bounded;
* any prefix depth produces *some* artifact (never crashes, never empty);
* calibration is idempotent and its achieved score is within tolerance;
* seed determinism: equal (labels, depth) → equal artifact;
* hwl and Wilkins-YAML rendering round-trips for arbitrary small configs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assets import reference_config
from repro.llm.calibration import calibrate, quality_curve
from repro.llm.corruption import apply_ops, build_ops
from repro.llm.profiles import ALL_PROFILES
from repro.metrics import bleu

REF = reference_config("wilkins")
KNOW = ALL_PROFILES["o3"]().knowledge_for("configuration", "wilkins")
OPS = build_ops(REF, KNOW, seed_labels=("prop",))
CURVE = quality_curve(REF, OPS)


@settings(max_examples=40, deadline=None)
@given(k=st.integers(min_value=0, max_value=len(OPS)))
def test_any_prefix_depth_yields_nonempty_artifact(k):
    artifact = apply_ops(REF, OPS, k)
    assert artifact.strip()
    assert 0.0 <= bleu(artifact, REF) <= 100.0


@settings(max_examples=40, deadline=None)
@given(k=st.integers(min_value=0, max_value=len(OPS)))
def test_apply_ops_deterministic(k):
    assert apply_ops(REF, OPS, k) == apply_ops(REF, OPS, k)


@settings(max_examples=30, deadline=None)
@given(target=st.floats(min_value=15.0, max_value=100.0))
def test_calibration_within_tolerance(target):
    result = calibrate(REF, OPS, target, tolerance=10.0)
    assert abs(result.achieved_bleu - target) <= 10.0
    assert 0 <= result.k <= len(OPS)


@settings(max_examples=30, deadline=None)
@given(target=st.floats(min_value=15.0, max_value=100.0))
def test_calibration_idempotent(target):
    a = calibrate(REF, OPS, target, tolerance=10.0)
    b = calibrate(REF, OPS, target, tolerance=10.0)
    assert a.k == b.k


def test_curve_endpoints():
    assert CURVE[0] == 100.0
    assert CURVE[-1] < 30.0
    assert all(0.0 <= v <= 100.0 for v in CURVE)


@settings(max_examples=25, deadline=None)
@given(
    labels=st.lists(
        st.text(alphabet="abcdef", min_size=1, max_size=5), min_size=1, max_size=3
    )
)
def test_ops_depend_only_on_seed_labels(labels):
    a = build_ops(REF, KNOW, seed_labels=tuple(labels))
    b = build_ops(REF, KNOW, seed_labels=tuple(labels))
    assert [op.describe for op in a] == [op.describe for op in b]


# ---------------------------------------------------------------------------
# round-trip properties for the two serializable config formats
# ---------------------------------------------------------------------------

_name = st.text(alphabet="abcdefgh", min_size=1, max_size=8)


@settings(max_examples=30, deadline=None)
@given(
    names=st.lists(_name, min_size=1, max_size=4, unique=True),
    nprocs=st.lists(st.integers(min_value=1, max_value=16), min_size=4, max_size=4),
)
def test_hwl_roundtrip(names, nprocs):
    from repro.workflows.henson.hwl import HwlScript, PuppetSpec, parse_hwl, render_hwl

    script = HwlScript(
        puppets=[
            PuppetSpec(name=n, executable=f"./{n}", args=("x",), nprocs=p)
            for n, p in zip(names, nprocs)
        ]
    )
    again = parse_hwl(render_hwl(script))
    assert [p.name for p in again.puppets] == [p.name for p in script.puppets]
    assert [p.nprocs for p in again.puppets] == [
        p.nprocs for p in script.puppets[: len(again.puppets)]
    ]


@settings(max_examples=30, deadline=None)
@given(
    consumers=st.integers(min_value=1, max_value=3),
    nprocs=st.integers(min_value=1, max_value=8),
)
def test_wilkins_yaml_roundtrip(consumers, nprocs):
    from repro.workflows.wilkins.config import (
        DsetConfig,
        PortConfig,
        TaskConfig,
        WilkinsConfig,
        parse_wilkins_yaml,
        render_wilkins_yaml,
    )

    dset = DsetConfig(name="/g/d", file=0, memory=1)
    config = WilkinsConfig(
        tasks=[
            TaskConfig(
                func="producer",
                nprocs=nprocs,
                outports=[PortConfig(filename="f.h5", dsets=[dset])],
            )
        ]
        + [
            TaskConfig(
                func=f"consumer{i}",
                nprocs=1,
                inports=[PortConfig(filename="f.h5", dsets=[dset])],
            )
            for i in range(consumers)
        ]
    )
    again = parse_wilkins_yaml(render_wilkins_yaml(config))
    assert len(again.tasks) == consumers + 1
    assert again.task("producer").nprocs == nprocs
