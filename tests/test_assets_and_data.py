"""Ground-truth assets and paper-number tables: internal consistency."""

from __future__ import annotations

import pytest

from repro.core.assets import (
    annotated_producer,
    base_producer,
    fewshot_example_config,
    reference_config,
)
from repro.data import (
    ANNOTATION_SYSTEMS,
    CONFIG_SYSTEMS,
    FIGURE1A,
    FIGURE1B,
    FIGURE1C,
    MODELS,
    PROMPT_VARIANTS,
    TABLE1,
    TABLE2,
    TABLE3,
    TABLE5,
    TRANSLATION_DIRECTIONS,
)
from repro.errors import ConfigError


class TestReferenceConfigs:
    def test_wilkins_reference_validates(self):
        from repro.workflows.wilkins import parse_wilkins_yaml, validate_config

        assert validate_config(reference_config("wilkins")).ok
        config = parse_wilkins_yaml(reference_config("wilkins"))
        assert config.total_procs() == 5

    def test_adios2_reference_validates(self):
        from repro.workflows.adios2 import parse_xml_config, validate_config

        assert validate_config(reference_config("adios2")).ok
        config = parse_xml_config(reference_config("adios2"))
        assert "SimulationOutput" in config.ios

    def test_henson_reference_validates(self):
        from repro.workflows.henson import parse_hwl, validate_config

        assert validate_config(reference_config("henson")).ok
        assert parse_hwl(reference_config("henson")).total_procs() == 5

    def test_fewshot_examples_validate(self):
        from repro.workflows import get_system

        for system in CONFIG_SYSTEMS:
            text = fewshot_example_config(system)
            report = get_system(system).validate_config(text)
            assert report.ok, (system, report.render())

    def test_unknown_system_raises(self):
        with pytest.raises(ConfigError):
            reference_config("parsl")
        with pytest.raises(ConfigError):
            fewshot_example_config("slurm")


class TestTaskCodes:
    def test_annotated_producers_validate(self):
        from repro.workflows import get_system

        for system in ANNOTATION_SYSTEMS:
            report = get_system(system).validate_task_code(annotated_producer(system))
            assert report.ok, (system, report.render())

    def test_base_producers_unannotated(self):
        c_code = base_producer("c")
        assert "adios2_" not in c_code and "henson_" not in c_code
        py_code = base_producer("python")
        assert "parsl" not in py_code and "pycompss" not in py_code

    def test_annotated_share_base_structure(self):
        # the annotation should be additive: simulation body survives
        for system, marker in (
            ("adios2", "MPI_Reduce(&sum, &total_sum"),
            ("henson", "MPI_Reduce(&sum, &total_sum"),
            ("parsl", "rng.random(n)"),
            ("pycompss", "rng.random(n)"),
        ):
            assert marker in annotated_producer(system), system

    def test_unknown_language_raises(self):
        with pytest.raises(ConfigError):
            base_producer("fortran")


class TestPaperNumbers:
    def test_table_coverage(self):
        assert len(TABLE1) == len(CONFIG_SYSTEMS) * len(MODELS)
        assert len(TABLE2) == len(ANNOTATION_SYSTEMS) * len(MODELS)
        assert len(TABLE3) == len(TRANSLATION_DIRECTIONS) * len(MODELS)

    def test_all_scores_in_range(self):
        for table in (TABLE1, TABLE2, TABLE3):
            for cell in table.values():
                assert 0 <= cell.bleu <= 100 and 0 <= cell.chrf <= 100
                assert cell.bleu_se >= 0 and cell.chrf_se >= 0

    def test_figure_coverage(self):
        assert set(FIGURE1A) == set(CONFIG_SYSTEMS)
        assert set(FIGURE1B) == set(ANNOTATION_SYSTEMS)
        assert set(FIGURE1C) == set(TRANSLATION_DIRECTIONS)
        for figure in (FIGURE1A, FIGURE1B, FIGURE1C):
            for rows in figure.values():
                assert set(rows) == set(PROMPT_VARIANTS)
                for values in rows.values():
                    assert len(values) == len(MODELS)
                    assert all(0 <= v <= 100 for v in values)

    def test_table5_claims(self):
        # few-shot beats zero-shot for every model (paper §4.5)
        for model in MODELS:
            assert TABLE5[model]["few-shot"].bleu > TABLE5[model]["zero-shot"].bleu
        # Claude attains the top few-shot score
        best = max(MODELS, key=lambda m: TABLE5[model if False else m]["few-shot"].bleu)
        assert best == "claude-sonnet-4"

    def test_table1_claims(self):
        # ADIOS2 is the best-configured system in the published data
        def overall(system):
            return sum(TABLE1[(system, m)].bleu for m in MODELS) / len(MODELS)

        assert overall("adios2") > overall("henson")
        assert overall("adios2") > overall("wilkins")

    def test_table5_zero_shot_matches_table1_overall(self):
        # paper consistency: Table 5 zero-shot row repeats Table 1 Overall
        for model in MODELS:
            mean_t1 = sum(TABLE1[(s, model)].bleu for s in CONFIG_SYSTEMS) / 3
            assert abs(mean_t1 - TABLE5[model]["zero-shot"].bleu) < 0.1


class TestCaseStudyListings:
    def test_table4_listings_are_c_code(self):
        from repro.data.case_studies import TABLE4_GEMINI, TABLE4_LLAMA

        for listing in (TABLE4_LLAMA, TABLE4_GEMINI):
            assert "int main" in listing
            assert "MPI_Reduce" in listing

    def test_table6_zeroshot_is_yaml(self):
        import yaml

        from repro.data.case_studies import TABLE6_ZEROSHOT

        doc = yaml.safe_load(TABLE6_ZEROSHOT)
        assert "workflow" in doc  # the hallucinated root
