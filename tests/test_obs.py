"""Observability layer: tracing, metrics, schema migration, trends, CLIs.

The :mod:`repro.perf` compatibility shim and the phase-profiler
behaviour it re-exports keep their own suite in ``test_perf.py``; this
file covers what PR 9 added on top — identified spans that cross
process boundaries, the metrics registry, the ``repro.stats/2`` schema
bump, and the ``python -m repro.obs`` CLI.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import pytest

from repro import obs
from repro.errors import HarnessError

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def make_plan(name="obs-test", system="adios2", epochs=1):
    from repro.core.experiments.configuration import configuration_task
    from repro.runtime import Plan

    plan = Plan(name)
    plan.add_eval(configuration_task(system), "sim/o3", epochs=epochs)
    return plan


class TestTracer:
    def test_lifecycle_and_span_parenting(self):
        with obs.tracing() as tracer:
            handle = tracer.begin_trace("t")
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            trace = tracer.end_trace(handle)
        by_name = {s.name: s for s in trace.spans}
        root = trace.root
        assert root.name == "t" and root.parent_id is None
        assert by_name["outer"].parent_id == root.span_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert len({s.span_id for s in trace.spans}) == len(trace.spans)
        assert trace.dropped == 0

    def test_nested_begin_trace_folds_into_outer(self):
        with obs.tracing() as tracer:
            outer = tracer.begin_trace("outer")
            assert tracer.begin_trace("inner") is None
            with obs.span("work"):
                pass
            trace = tracer.end_trace(outer)
        assert {s.name for s in trace.spans} == {"outer", "work"}

    def test_spans_between_traces_are_not_recorded(self):
        with obs.tracing() as tracer:
            with obs.span("limbo"):
                pass  # armed but no open trace: must not record or raise
            handle = tracer.begin_trace("t")
            trace = tracer.end_trace(handle)
        assert [s.name for s in trace.spans] == ["t"]

    def test_record_span_skips_the_nesting_stack(self):
        with obs.tracing() as tracer:
            handle = tracer.begin_trace("t")
            tracer.record_span("async-unit", start_unix=time.time(),
                               duration_s=0.01)
            trace = tracer.end_trace(handle)
        span = {s.name: s for s in trace.spans}["async-unit"]
        assert span.parent_id == trace.root.span_id
        assert span.duration_s == pytest.approx(0.01)

    def test_record_remote_folds_and_tolerates_garbage(self):
        with obs.tracing() as tracer:
            handle = tracer.begin_trace("t")
            good = obs.make_span_dict(
                "remote-work", parent_id=tracer.current_span_id(),
                start_unix=1.0, duration_s=0.5,
            )
            assert obs.fold_remote_spans([good, {"nope": True}]) == 1
            trace = tracer.end_trace(handle)
        span = {s.name: s for s in trace.spans}["remote-work"]
        assert span.parent_id == trace.root.span_id
        assert span.pid == os.getpid()

    def test_fold_remote_spans_is_a_noop_when_off(self):
        assert obs.fold_remote_spans([{"anything": 1}]) == 0
        assert obs.propagation_context() is None

    def test_propagation_context_carries_trace_and_span(self):
        with obs.tracing() as tracer:
            handle = tracer.begin_trace("t")
            with obs.span("caller") as caller_id:
                ctx = obs.propagation_context()
                assert ctx == {"id": tracer.current_trace_id(),
                               "parent": caller_id}
            tracer.end_trace(handle)

    def test_max_spans_drops_and_counts(self):
        with obs.tracing(obs.Tracer(max_spans=3)) as tracer:
            handle = tracer.begin_trace("t")
            for i in range(6):
                with obs.span(f"s{i}"):
                    pass
            trace = tracer.end_trace(handle)
        # 3 kept + the root span appended at close
        assert len(trace.spans) == 4
        assert trace.dropped == 3

    def test_on_finish_hook_sees_each_trace(self):
        finished = []
        with obs.tracing(obs.Tracer(on_finish=finished.append)) as tracer:
            for name in ("a", "b"):
                handle = tracer.begin_trace(name)
                tracer.end_trace(handle)
        assert [t.name for t in finished] == ["a", "b"]

    def test_trace_dict_roundtrip(self):
        with obs.tracing() as tracer:
            handle = tracer.begin_trace("t")
            with obs.span("work"):
                pass
            trace = tracer.end_trace(handle)
        assert obs.Trace.from_dict(trace.as_dict()) == trace
        with pytest.raises(HarnessError):
            obs.Trace.from_dict({"schema": "nope"})

    def test_chrome_export_shape(self, tmp_path):
        with obs.tracing() as tracer:
            handle = tracer.begin_trace("t")
            with obs.span("work"):
                pass
            trace = tracer.end_trace(handle)
        out = tmp_path / "chrome.json"
        trace.write_chrome(out)
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"t", "work"}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] > 0
        assert any(e["ph"] == "M" for e in events)  # lane metadata


class TestMetrics:
    def test_counter_labels_and_snapshot(self):
        registry = obs.MetricsRegistry()
        ops = registry.counter("ops_total", "ops", ("op",))
        ops.inc(op="get")
        ops.inc(2, op="put")
        assert ops.value(op="get") == 1
        assert ops.value(op="put") == 2
        assert ops.value(op="never") == 0
        snap = registry.snapshot()
        assert snap["schema"] == obs.METRICS_SCHEMA
        (metric,) = snap["metrics"]
        assert {s["labels"]["op"]: s["value"] for s in metric["series"]} == {
            "get": 1.0, "put": 2.0,
        }

    def test_gauge_set_inc_dec(self):
        gauge = obs.MetricsRegistry().gauge("inflight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value() == 1
        gauge.set(7)
        assert gauge.value() == 7

    def test_histogram_quantiles_and_counts(self):
        hist = obs.MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.05, 0.5, 2.0):
            hist.observe(v)
        (series,) = hist._snapshot_series()
        assert series["count"] == 4
        assert series["min"] == 0.05 and series["max"] == 2.0
        assert series["sum"] == pytest.approx(2.6)
        assert 0.05 <= series["p50"] <= 0.5
        assert series["p99"] <= 2.0  # clamped to the observed max
        assert dict((str(b), c) for b, c in series["buckets"]) == {
            "0.1": 2, "1.0": 1, "+Inf": 1,
        }

    def test_label_mismatch_raises(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("c", labelnames=("op",))
        with pytest.raises(HarnessError):
            counter.inc()  # missing the declared label
        with pytest.raises(HarnessError):
            counter.inc(op="x", extra="y")
        registry.counter("c", labelnames=("op",))  # same spec: fine
        with pytest.raises(HarnessError):
            registry.counter("c", labelnames=("other",))
        with pytest.raises(HarnessError):
            registry.gauge("c", labelnames=("op",))  # same name, new type

    def test_render_prometheus(self):
        registry = obs.MetricsRegistry()
        registry.counter("reqs_total", "requests", ("op",)).inc(op="get")
        registry.histogram("lat_seconds", "latency",
                           buckets=(0.1, 1.0)).observe(0.05)
        text = obs.render_prometheus(registry.snapshot())
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{op="get"} 1' in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        with pytest.raises(HarnessError):
            obs.render_prometheus({"not": "a snapshot"})

    def test_metering_installs_and_restores(self):
        assert obs.active_registry() is None
        with obs.metering() as registry:
            assert obs.active_registry() is registry
            with obs.metering() as inner:
                assert obs.active_registry() is inner
            assert obs.active_registry() is registry
        assert obs.active_registry() is None


class TestSpanDispatch:
    def test_disarmed_span_is_shared_noop(self):
        assert obs.span("a") is obs.span("b")

    def test_tracer_only_records_identified_spans(self):
        assert obs.active_profiler() is None
        with obs.tracing() as tracer:
            handle = tracer.begin_trace("t")
            with obs.span("solo"):
                pass
            trace = tracer.end_trace(handle)
        assert "solo" in {s.name for s in trace.spans}

    def test_profiler_and_tracer_both_record_one_span(self):
        with obs.profiling() as prof, obs.tracing() as tracer:
            handle = tracer.begin_trace("t")
            with obs.span("both"):
                time.sleep(0.001)
            trace = tracer.end_trace(handle)
        assert prof.snapshot().calls("both") == 1
        assert "both" in {s.name for s in trace.spans}

    def test_perf_shim_is_the_same_object(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro import perf

        assert perf.span is obs.span
        assert perf.profiling is obs.profiling
        assert perf.render_profile is obs.render_profile

    def test_perf_shim_warns_deprecation_on_import(self):
        import importlib
        import sys

        # a fresh import, so the module-level warning actually fires
        sys.modules.pop("repro.perf", None)
        with pytest.warns(DeprecationWarning, match="repro.obs instead"):
            importlib.import_module("repro.perf")


class TestRunnerIntegration:
    def test_run_gets_a_trace_id_and_named_phases(self):
        from repro.runtime import run

        plan = make_plan()
        with obs.tracing() as tracer:
            outcome = run(plan)
        assert outcome.stats.trace_id is not None
        # without a tracer the field stays None (and costs nothing)
        assert run(plan).stats.trace_id is None

    def test_trace_and_metrics_land_on_the_manifest(self, tmp_path):
        from repro.persist import RunStore
        from repro.runtime import run

        plan = make_plan()
        with obs.tracing(), obs.metering():
            with RunStore(tmp_path / "store") as store:
                outcome = run(plan, store=store)
                manifest = store.latest_manifest()
        assert manifest.trace is not None
        assert manifest.trace["trace_id"] == outcome.stats.trace_id
        names = {s["name"] for s in manifest.trace["spans"]}
        assert {"generate", "score", "cache-get"} <= names
        assert manifest.metrics is not None
        published = {m["name"] for m in manifest.metrics["metrics"]}
        assert "repro_runs_total" in published
        assert manifest.to_payload()["stats"]["schema"] == "repro.stats/2"

    def test_run_metrics_count_units(self):
        from repro.runtime import run

        plan = make_plan(epochs=2)
        with obs.metering() as registry:
            run(plan)
        units = registry.counter(
            "repro_run_units_total", labelnames=("plan", "outcome")
        )
        generated = units.value(plan="obs-test", outcome="generated")
        dedup = units.value(plan="obs-test", outcome="deduplicated")
        assert generated + dedup == 2.0

    def test_trace_closes_when_the_run_raises(self):
        from repro.errors import ModelError
        from repro.runtime import run
        from repro.testing import FaultPlan, faulty_models

        plan = make_plan()
        storm = FaultPlan(seed=0, transient_rate=1.0, transient_times=99)
        with obs.tracing() as tracer:
            with faulty_models(["sim/o3"], storm):
                with pytest.raises(ModelError):
                    run(plan)  # no fault policy: the first strike aborts
            # the failed run's trace was sealed: a new one can open
            handle = tracer.begin_trace("after")
            assert handle is not None
            tracer.end_trace(handle)

    def test_scoring_pool_spans_cross_the_process_boundary(self):
        from repro.runtime import ScoringPool, run

        plan = make_plan(epochs=2)
        pool = ScoringPool(max_workers=1)
        try:
            with obs.tracing() as tracer:
                handle = tracer.begin_trace("pooled")
                outcome = run(plan, scoring=pool)
                trace = tracer.end_trace(handle)
        finally:
            pool.close()
        assert outcome.stats.scores_computed > 0
        workers = [s for s in trace.spans
                   if s.name.startswith("score-worker")]
        assert workers, "no score-worker spans folded from the pool"
        ids = {s.span_id for s in trace.spans}
        assert all(s.parent_id in ids for s in workers)
        assert any(s.pid != os.getpid() for s in workers)

    def test_grids_bit_identical_with_telemetry_armed(self):
        from repro.core.experiments import run_configuration

        sweep = dict(models=["o3"], systems=["adios2"], epochs=2)
        bare = run_configuration(**sweep)
        with obs.tracing(), obs.metering(), obs.profiling():
            armed = run_configuration(**sweep)
        assert armed.cells == bare.cells


class TestServeTracePropagation:
    def test_client_spans_parent_server_spans(self, tmp_path):
        from test_serve import ServerThread

        srv = ServerThread(tmp_path / "served")
        try:
            with obs.tracing() as tracer:
                handle = tracer.begin_trace("wire")
                with srv.client() as remote:
                    remote.ping()
                    remote.stats()
                trace = tracer.end_trace(handle)
        finally:
            srv.stop()
        by_id = {s.span_id: s for s in trace.spans}
        servers = [s for s in trace.spans if s.name.startswith("server:")]
        assert {s.name for s in servers} >= {"server:ping", "server:stats"}
        for span in servers:
            parent = by_id[span.parent_id]
            assert parent.name == span.name.replace("server:", "remote:")
        # server spans were timed on the server's own event-loop thread
        assert any(s.thread != threading.current_thread().name
                   for s in servers)

    def test_metrics_op_and_prometheus_dump(self, tmp_path):
        from test_serve import ServerThread

        srv = ServerThread(tmp_path / "served")
        try:
            with srv.client() as remote:
                remote.ping()
                live = remote.metrics()
                text = remote.dump_metrics()
        finally:
            srv.stop()
        assert live["metrics"]["schema"] == obs.METRICS_SCHEMA
        summary = live["summary"]
        assert summary["requests_served"] >= 1
        assert "ping" in summary["ops"]
        assert summary["ops"]["ping"]["count"] >= 1
        assert {"p50_s", "p95_s", "p99_s"} <= set(summary["ops"]["ping"])
        assert len(summary["shards"]) == 2
        assert 'repro_server_ops_total{op="ping",status="ok"}' in text

    def test_untraced_requests_stay_clean(self, tmp_path):
        from test_serve import ServerThread

        srv = ServerThread(tmp_path / "served")
        try:
            with srv.client() as remote:
                response = remote.ping()
        finally:
            srv.stop()
        assert "spans" not in response


class TestSchemaMigration:
    @pytest.mark.parametrize("fixture", ["manifest_v1.json",
                                         "manifest_v2.json"])
    def test_fixture_manifests_rehydrate_and_render(self, fixture):
        from repro.persist.manifest import RunManifest

        payload = json.loads((FIXTURES / fixture).read_text())
        manifest = RunManifest.from_payload(payload)
        assert manifest.stats.total_units == 1
        rendered = obs.render_manifest(payload, title="fixture")
        assert manifest.run_id in rendered
        # the payload survives a roundtrip through the current code
        assert RunManifest.from_payload(manifest.to_payload()) == manifest

    def test_pre_2_manifest_has_no_observability_fields(self):
        from repro.persist.manifest import RunManifest

        payload = json.loads((FIXTURES / "manifest_v1.json").read_text())
        assert payload["stats"]["schema"] == "repro.stats/1"
        manifest = RunManifest.from_payload(payload)
        assert manifest.trace is None
        assert manifest.metrics is None
        assert manifest.stats.trace_id is None
        # rewriting keeps the payload lean: no null keys appear
        rewritten = manifest.to_payload()
        assert "trace" not in rewritten and "metrics" not in rewritten

    def test_current_manifest_carries_trace_and_metrics(self):
        from repro.persist.manifest import RunManifest

        payload = json.loads((FIXTURES / "manifest_v2.json").read_text())
        assert payload["stats"]["schema"] == "repro.stats/2"
        manifest = RunManifest.from_payload(payload)
        assert manifest.trace["trace_id"] == manifest.stats.trace_id
        assert manifest.trace["spans"]
        assert manifest.metrics["schema"] == obs.METRICS_SCHEMA

    def test_store_roundtrips_pre_2_manifest(self, tmp_path):
        from repro.persist import RunStore
        from repro.persist.manifest import RunManifest

        payload = json.loads((FIXTURES / "manifest_v1.json").read_text())
        manifest = RunManifest.from_payload(payload)
        with RunStore(tmp_path / "store") as store:
            store.put_manifest(manifest)
            assert store.manifest(manifest.run_id) == manifest


class TestTrend:
    def _seed_store(self, root):
        from repro.persist import RunStore
        from repro.runtime import run

        plan = make_plan(name="trend-plan", epochs=2)
        with RunStore(root) as store:
            run(plan, store=store)
            run(plan, store=store)  # warm: pure cache hits

    def test_collect_and_render(self, tmp_path):
        from repro.obs.trend import collect_trend, render_trend

        self._seed_store(tmp_path / "store")
        rows = collect_trend(str(tmp_path / "store"))
        assert len(rows) == 2
        cold, warm = rows  # sorted by start time
        assert cold["cache_hit_rate"] == 0.0
        assert warm["cache_hit_rate"] == 1.0
        assert warm["total_units"] == 2
        rendered = render_trend(rows)
        assert "trend-plan" in rendered
        assert "100.0%" in rendered

    def test_trend_cli_json(self, tmp_path, capsys):
        from repro.obs.cli import main

        self._seed_store(tmp_path / "store")
        assert main(["trend", "--store", str(tmp_path / "store"),
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["plan_name"] for row in rows] == ["trend-plan"] * 2

    def test_empty_store_renders_cleanly(self, tmp_path):
        from repro.obs.trend import collect_trend, render_trend
        from repro.persist import RunStore

        RunStore(tmp_path / "store").close()
        rows = collect_trend(str(tmp_path / "store"))
        assert rows == []
        assert "no run manifests" in render_trend(rows)


class TestObsCLI:
    def _recorded_store(self, root):
        from repro.persist import RunStore
        from repro.runtime import run

        with obs.tracing():
            with RunStore(root) as store:
                outcome = run(make_plan(), store=store)
        return outcome.stats.trace_id, store.root

    def test_trace_summary_and_chrome_export(self, tmp_path, capsys):
        from repro.obs.cli import main
        from repro.persist import RunStore

        self._recorded_store(tmp_path / "store")
        with RunStore(tmp_path / "store") as store:
            run_id = store.latest_manifest().run_id
        out_json = tmp_path / "chrome.json"
        assert main(["trace", run_id, "--store", str(tmp_path / "store"),
                     "--chrome", str(out_json)]) == 0
        printed = capsys.readouterr().out
        assert "spans" in printed
        assert json.loads(out_json.read_text())["traceEvents"]

    def test_trace_missing_is_a_clean_error(self, tmp_path, capsys):
        from repro.obs.cli import main
        from repro.persist import RunStore
        from repro.runtime import run

        with RunStore(tmp_path / "store") as store:
            run(make_plan(), store=store)  # untraced
            run_id = store.latest_manifest().run_id
        assert main(["trace", run_id,
                     "--store", str(tmp_path / "store")]) == 2
        assert "no recorded trace" in capsys.readouterr().err

    def test_ls_runs_trace_column(self, tmp_path, capsys):
        from repro.persist.cli import main

        self._recorded_store(tmp_path / "store")
        assert main(["ls-runs", "--trace", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "trace " in out and "spans)" in out
