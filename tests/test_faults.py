"""Unit tests for the fault-tolerance layer (repro.runtime.faults)."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.experiments.configuration import configuration_task
from repro.errors import (
    CalibrationError,
    CommunicatorError,
    DeadlineExceededError,
    GenerationError,
    HarnessError,
    ModelError,
    UnitFailedError,
    UnknownModelError,
)
from repro.runtime import (
    BatchingExecutor,
    FaultPolicy,
    MpiShardExecutor,
    Plan,
    RetryPolicy,
    run,
)
from repro.runtime.faults import (
    FailedGeneration,
    FaultState,
    UnitFailure,
    active_faults,
    failure_from_payload,
    failure_payload,
    fault_scope,
)


def one_unit():
    plan = Plan("faults-unit")
    plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
    return plan.units[0]


class TestRetryPolicy:
    def test_retryable_is_transient_model_errors_only(self):
        policy = RetryPolicy()
        assert policy.is_retryable(ModelError("rate limited"))
        # permanent, caller-bug and deadline shapes are never retried
        assert not policy.is_retryable(UnknownModelError("no such model"))
        assert not policy.is_retryable(GenerationError("empty prompt"))
        assert not policy.is_retryable(CalibrationError("no depth fits"))
        assert not policy.is_retryable(DeadlineExceededError("too slow"))
        assert not policy.is_retryable(ValueError("not a model error"))
        assert not policy.is_retryable(OSError("disk"))

    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_zero_delay_policy_never_sleeps(self):
        policy = RetryPolicy(base_delay=0.0, max_delay=0.0)
        assert all(policy.delay(attempt) == 0.0 for attempt in range(5))

    def test_validation(self):
        with pytest.raises(HarnessError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(HarnessError, match="non-negative"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(HarnessError, match="non-negative"):
            RetryPolicy(max_delay=-1.0)


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(HarnessError, match="on_failure"):
            FaultPolicy(on_failure="explode")
        with pytest.raises(HarnessError, match="unit_deadline_s"):
            FaultPolicy(unit_deadline_s=0.0)
        with pytest.raises(HarnessError, match="retry_budget"):
            FaultPolicy(retry_budget=-1)

    def test_isolating(self):
        assert not FaultPolicy().isolating
        assert FaultPolicy(on_failure="isolate").isolating
        assert FaultPolicy(on_failure="skip").isolating


class TestFaultStateRetries:
    def test_retries_until_success(self):
        state = FaultState(
            FaultPolicy(retry=RetryPolicy(max_attempts=3, base_delay=0.0))
        )
        unit = one_unit()
        calls = []

        def flaky(u):
            calls.append(u.uid)
            if len(calls) < 3:
                raise ModelError("transient")
            return "ok"

        assert state.run_unit(unit, flaky) == "ok"
        assert len(calls) == 3
        assert state.units_retried == 1
        assert state.retries == 2

    def test_exhausted_attempts_raise_in_raise_mode(self):
        state = FaultState(
            FaultPolicy(retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        )
        with pytest.raises(ModelError, match="always"):
            state.run_unit(one_unit(), lambda u: (_ for _ in ()).throw(
                ModelError("always")
            ))

    def test_exhausted_attempts_isolate_to_failed_generation(self):
        state = FaultState(
            FaultPolicy(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                on_failure="isolate",
            )
        )
        unit = one_unit()

        def always(u):
            raise ModelError("always down")

        out = state.run_unit(unit, always)
        assert isinstance(out, FailedGeneration)
        assert out.key == unit.key
        assert out.attempts == 2
        failure = out.unit_failure(unit.uid)
        assert failure.error_type == "ModelError"
        assert "always down" in failure.message

    def test_programming_errors_never_isolate(self):
        state = FaultState(FaultPolicy(on_failure="isolate"))

        def broken(u):
            raise KeyError("bug")

        with pytest.raises(KeyError):
            state.run_unit(one_unit(), broken)

    def test_nonretryable_model_error_fails_on_first_attempt(self):
        state = FaultState(
            FaultPolicy(
                retry=RetryPolicy(max_attempts=5, base_delay=0.0),
                on_failure="isolate",
            )
        )

        def fatal(u):
            raise GenerationError("empty prompt")

        out = state.run_unit(one_unit(), fatal)
        assert isinstance(out, FailedGeneration)
        assert out.attempts == 1
        assert state.retries == 0


class TestRetryBudget:
    def test_shared_budget_exhausts_across_units(self):
        state = FaultState(
            FaultPolicy(
                retry=RetryPolicy(max_attempts=3, base_delay=0.0),
                retry_budget=1,
                on_failure="isolate",
            )
        )
        unit = one_unit()
        calls = {"n": 0}

        def always(u):
            calls["n"] += 1
            raise ModelError("down")

        # first unit: 1 retry from the budget, then the budget is dry
        first = state.run_unit(unit, always)
        assert isinstance(first, FailedGeneration)
        assert calls["n"] == 2  # attempt + the one budgeted retry
        assert state.budget_exhausted
        # second unit: no retries left — fails after its first attempt
        calls["n"] = 0
        second = state.run_unit(unit, always)
        assert isinstance(second, FailedGeneration)
        assert calls["n"] == 1

    def test_zero_budget_disables_retries_entirely(self):
        state = FaultState(
            FaultPolicy(
                retry=RetryPolicy(max_attempts=4, base_delay=0.0),
                retry_budget=0,
                on_failure="isolate",
            )
        )
        out = state.run_unit(one_unit(), lambda u: (_ for _ in ()).throw(
            ModelError("down")
        ))
        assert isinstance(out, FailedGeneration)
        assert out.attempts == 1
        assert state.retries == 0


class TestDeadlines:
    def test_sync_deadline_becomes_deadline_error(self):
        state = FaultState(
            FaultPolicy(
                retry=RetryPolicy(max_attempts=50, base_delay=0.01),
                unit_deadline_s=0.03,
                on_failure="isolate",
            )
        )

        def slow_and_down(u):
            time.sleep(0.02)
            raise ModelError("down")

        out = state.run_unit(one_unit(), slow_and_down)
        assert isinstance(out, FailedGeneration)
        failure = out.unit_failure("uid")
        assert failure.error_type == "DeadlineExceededError"
        assert failure.elapsed_s > 0

    def test_sync_deadline_raises_in_raise_mode(self):
        state = FaultState(
            FaultPolicy(
                retry=RetryPolicy(max_attempts=50, base_delay=0.01),
                unit_deadline_s=0.02,
            )
        )
        with pytest.raises(DeadlineExceededError) as excinfo:
            state.run_unit(one_unit(), lambda u: (_ for _ in ()).throw(
                ModelError("down")
            ))
        assert excinfo.value.deadline_s == 0.02
        # the terminal deadline error chains the fault that burned the clock
        assert isinstance(excinfo.value.__cause__, ModelError)

    def test_async_deadline_cancels_inflight_call(self):
        state = FaultState(
            FaultPolicy(unit_deadline_s=0.02, on_failure="isolate")
        )

        async def hang(u):
            await asyncio.sleep(5.0)

        async def main():
            return await state.run_unit_async(one_unit(), hang)

        started = time.perf_counter()
        out = asyncio.run(main())
        assert time.perf_counter() - started < 1.0  # cancelled, not waited out
        assert isinstance(out, FailedGeneration)
        assert out.unit_failure("uid").error_type == "DeadlineExceededError"


class TestFaultScope:
    def test_scope_installs_and_clears(self):
        state = FaultState(FaultPolicy())
        assert active_faults() is None
        with fault_scope(state):
            assert active_faults() is state
        assert active_faults() is None

    def test_nested_scopes_rejected(self):
        with fault_scope(FaultState(FaultPolicy())):
            with pytest.raises(HarnessError, match="already active"):
                with fault_scope(FaultState(FaultPolicy())):
                    pass  # pragma: no cover

    def test_scope_clears_after_exception(self):
        with pytest.raises(RuntimeError):
            with fault_scope(FaultState(FaultPolicy())):
                raise RuntimeError("boom")
        assert active_faults() is None


class TestUnitFailurePayload:
    def test_roundtrip(self):
        failure = UnitFailure(
            uid="u0:task:sim/o3:0",
            key="abc123",
            model="sim/o3",
            error_type="ModelError",
            message="injected",
            attempts=3,
            elapsed_s=0.25,
            traceback_digest="deadbeef0123",
        )
        assert failure_from_payload(failure_payload(failure)) == failure

    def test_malformed_payload_rejected(self):
        with pytest.raises(HarnessError):
            failure_from_payload({"uid": "only"})
        with pytest.raises(HarnessError):
            failure_from_payload("not a mapping")

    def test_describe_mentions_the_essentials(self):
        failure = UnitFailure(
            uid="u0", key="k", model="sim/o3", error_type="ModelError",
            message="m", attempts=2, elapsed_s=0.1, traceback_digest="d",
        )
        text = failure.describe()
        assert "u0" in text and "ModelError" in text and "2 attempt(s)" in text


class TestUnitFailedError:
    def test_carries_failure_records(self):
        failure = UnitFailure(
            uid="u0", key="k", model="sim/o3", error_type="ModelError",
            message="m", attempts=1, elapsed_s=0.0, traceback_digest="d",
        )
        exc = UnitFailedError("quarantined", failures=(failure,))
        assert exc.failures == (failure,)
        assert UnitFailedError("empty").failures == ()


class TestMpiDeadline:
    def test_timeout_surfaces_typed_deadline_error(self, monkeypatch):
        import repro.mpi.launcher as launcher

        def stuck(*args, **kwargs):
            raise CommunicatorError(
                "gather timed out after 0.1s on mpi-rank-2 (deadlock?)"
            )

        monkeypatch.setattr(launcher, "mpiexec", stuck)
        executor = MpiShardExecutor(nprocs=3, timeout=0.1)
        with pytest.raises(DeadlineExceededError) as excinfo:
            executor.execute([one_unit()])
        err = excinfo.value
        assert err.rank == 2
        assert err.deadline_s == 0.1
        assert err.elapsed_s >= 0
        assert "0.1s deadline" in str(err)
        assert isinstance(err.__cause__, CommunicatorError)

    def test_rank_failure_still_unwraps_the_cause(self, monkeypatch):
        import repro.mpi.launcher as launcher

        def failed_rank(*args, **kwargs):
            raise CommunicatorError("rank died") from ModelError("provider down")

        monkeypatch.setattr(launcher, "mpiexec", failed_rank)
        with pytest.raises(ModelError, match="provider down"):
            MpiShardExecutor(nprocs=2).execute([one_unit()])


class TestBatchingSalvage:
    def test_poisoned_prompt_does_not_regenerate_siblings(self):
        from repro.llm.api import register_model
        from repro.llm.types import ModelOutput, ModelUsage

        class Poisoned:
            """Batch calls fail; per-request calls fail for one prompt."""

            name = "chaos/poisoned"

            def __init__(self):
                self.calls = []

            def generate(self, messages, config):
                prompt = messages[-1].content
                self.calls.append(prompt)
                if "BAD" in prompt:
                    raise ModelError("poisoned prompt")
                return ModelOutput(
                    model=self.name,
                    completion=f"echo:{prompt}",
                    usage=ModelUsage(input_tokens=1, output_tokens=1),
                    stop_reason="stop",
                )

            def generate_batch(self, requests):
                raise ModelError("batch endpoint down")

        provider = Poisoned()
        register_model(provider.name, lambda: provider)

        from repro.core.samples import Sample
        from repro.core.scorers import Score
        from repro.core.task import Task

        def scorer(completion, target):
            return Score(values={"len": float(len(completion))}, answer=completion)

        def make_task(prompts):
            return Task(
                name="salvage",
                dataset=[
                    Sample(id=p, input=p, target="t") for p in prompts
                ],
                scorer=scorer,
            )

        plan = Plan("salvage")
        plan.add_eval(
            make_task(["good-1", "BAD-2", "good-3"]),
            provider.name,
            epochs=1,
        )
        with pytest.raises(ModelError, match="poisoned"):
            run(plan, executor=BatchingExecutor())
        first_calls = list(provider.calls)
        assert first_calls.count("good-1") == 1
        assert first_calls.count("good-3") == 1

        # retrying the same plan serves the salvaged siblings from the
        # executor's memo: only the poisoned prompt is attempted again
        provider.calls.clear()
        executor = BatchingExecutor()
        with pytest.raises(ModelError, match="poisoned"):
            run(plan, executor=executor)
        with pytest.raises(ModelError, match="poisoned"):
            run(plan, executor=executor)
        assert provider.calls.count("good-1") == 1
        assert provider.calls.count("good-3") == 1
        assert provider.calls.count("BAD-2") == 2
