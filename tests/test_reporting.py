"""Reporting layer: table layout, bold markers, CSV, heatmaps, comparisons."""

from __future__ import annotations

import pytest

from repro.core.experiments.base import CellResult, ExperimentGrid
from repro.data import Cell4, MODELS
from repro.metrics.stats import Aggregate
from repro.reporting import compare_with_paper, render_figure1, render_grid_table
from repro.reporting.heatmap import render_heatmap
from repro.utils.tables import Cell, TextTable, render_matrix


def agg(mean: float, se: float = 0.5) -> Aggregate:
    return Aggregate(mean=mean, stderr=se, n=5)


def demo_grid() -> ExperimentGrid:
    grid = ExperimentGrid("demo", row_keys=["adios2", "henson"], models=list(MODELS))
    for i, row in enumerate(grid.row_keys):
        for j, model in enumerate(MODELS):
            base = 60.0 - 30 * i + j
            grid.add(row, model, CellResult(agg(base), agg(base + 2)))
    return grid


class TestTextTable:
    def test_alignment_and_title(self):
        table = TextTable("My Title", columns=["A", "B"])
        table.add_row("row1", [Cell(1.234, 0.5), Cell(9.0)])
        text = table.render()
        assert "My Title" in text
        assert "1.2±0.5" in text and "9.0" in text

    def test_wrong_cell_count_rejected(self):
        table = TextTable("T", columns=["A", "B"])
        with pytest.raises(ValueError):
            table.add_row("r", [Cell(1.0)])

    def test_bold_marker(self):
        assert Cell(5.0, bold=True).render() == "*5.0*"

    def test_csv(self):
        table = TextTable("T", columns=["A"])
        table.add_row("r", [Cell(1.0)])
        assert table.to_csv() == ",A\nr,1.0"

    def test_render_matrix(self):
        text = render_matrix("M", ["r1"], ["c1", "c2"], [[1.0, 2.0]])
        assert "r1" in text and "2.0" in text


class TestGridTable:
    def test_paper_layout(self):
        text = render_grid_table(demo_grid(), "Table X")
        assert "ADIOS2" in text and "Henson" in text
        assert "Overall" in text
        assert "o3 BLEU" in text and "LLaMA-3.3-70B ChrF" in text

    def test_best_markers_present(self):
        text = render_grid_table(demo_grid(), "Table X")
        assert "*" in text  # bold best row/model


class TestHeatmaps:
    def test_short_model_labels(self):
        data = {"original": {m: 10.0 for m in MODELS}}
        text = render_heatmap("H", data, variants=["original"])
        for short in ("o3", "Gemini", "Claude", "LLaMA"):
            assert short in text

    def test_figure_groups_by_condition(self):
        results = {
            "adios2": {"original": {m: 1.0 for m in MODELS}},
            ("adios2", "henson"): {"original": {m: 2.0 for m in MODELS}},
        }
        text = render_figure1(results, "F")
        assert "ADIOS2" in text
        assert "ADIOS2 to Henson" in text


class TestComparison:
    def test_delta_rendering(self):
        measured = CellResult(agg(32.0), agg(30.0))
        paper = Cell4(30.0, 1.5, 29.1, 1.0)
        line = compare_with_paper(measured, paper, "cell")
        assert "Δ+2.0" in line and "Δ+0.9" in line
        assert "paper BLEU 30.0±1.5" in line
