"""Async batched provider runtime: AsyncExecutor, batching, scheduling.

The executor-equivalence matrix for the two new execution paths — the
asyncio executor and per-model batched generation — plus the retry
policy, the adaptive scheduler and its online cost model.  Everything
here enforces the runtime's core contract: the execution strategy is a
pure latency knob, never a results knob.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import run_configuration
from repro.core.experiments.configuration import configuration_task
from repro.core.samples import Sample
from repro.core.scorers import CodeSimilarityScorer
from repro.core.task import Task
from repro.errors import GenerationError, HarnessError, ModelError
from repro.llm.api import Model, as_async, get_model
from repro.llm.simulated import SimulatedModel
from repro.llm.types import ChatMessage, GenerateConfig, ModelOutput, ModelUsage
from repro.runtime import (
    AdaptiveScheduler,
    AsyncExecutor,
    BatchingExecutor,
    ExpectedCostModel,
    InMemoryResultCache,
    Plan,
    PlanOrderScheduler,
    RetryPolicy,
    SerialExecutor,
    group_units_by_model,
    run,
)


def table1_sweep(executor=None, cache=None, scheduler=None):
    """The full Table-1 sweep (4 models × 3 systems), 2 epochs."""
    return run_configuration(epochs=2, executor=executor, cache=cache,
                             scheduler=scheduler)


def echo_output(name: str, completion: str = "```\nok\n```") -> ModelOutput:
    return ModelOutput(
        model=name, completion=completion, usage=ModelUsage(1, 1)
    )


def simple_task(name: str, prompt: str = "Provide the workflow configuration "
                "file for the Wilkins workflow system.") -> Task:
    return Task(
        name=name,
        dataset=[Sample(id="s", input=prompt, target="ok")],
        solvers=[],
        scorer=CodeSimilarityScorer(metrics=("bleu",)),
    )


class FlakyProvider:
    """Fails the first ``fail_times`` calls with a transient ModelError."""

    def __init__(self, name: str, fail_times: int) -> None:
        self.name = name
        self.fail_times = fail_times
        self.calls = 0

    def generate(self, messages, config):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise ModelError(f"{self.name}: simulated 429, try again")
        return echo_output(self.name)


class TestAsyncAndBatchedEquivalence:
    """Async and batched paths must be bit-identical to SerialExecutor."""

    @pytest.fixture(scope="class")
    def serial_grid(self):
        return table1_sweep(SerialExecutor())

    @pytest.mark.parametrize("name,make", [
        ("async", lambda: AsyncExecutor(8)),
        ("async-retrying", lambda: AsyncExecutor(
            4, retry=RetryPolicy(max_attempts=5, base_delay=0.001))),
        ("batched", lambda: BatchingExecutor()),
        ("batched-serial-groups", lambda: BatchingExecutor(group_concurrency=1)),
    ])
    def test_table1_grid_identical_to_serial(self, serial_grid, name, make):
        grid = table1_sweep(make())
        assert grid.cells == serial_grid.cells, name

    @pytest.mark.parametrize("name,make", [
        ("async", lambda: AsyncExecutor(8)),
        ("batched", lambda: BatchingExecutor()),
    ])
    def test_warm_cache_zero_generations(self, serial_grid, name, make,
                                         monkeypatch):
        cache = InMemoryResultCache()
        cold = table1_sweep(make(), cache=cache)
        calls = []

        def recording(self, messages, config):  # pragma: no cover - guard
            calls.append(self.name)
            raise AssertionError("warm rerun must not reach the model layer")

        monkeypatch.setattr(SimulatedModel, "generate", recording)
        monkeypatch.setattr(SimulatedModel, "generate_batch", recording)
        warm = table1_sweep(make(), cache=cache)
        assert calls == []
        assert warm.cells == cold.cells == serial_grid.cells

    @pytest.mark.parametrize("name,make", [
        ("async", lambda: AsyncExecutor(6)),
        ("batched", lambda: BatchingExecutor()),
    ])
    def test_provider_error_propagates(self, name, make):
        # an empty prompt makes SimulatedModel raise GenerationError —
        # a deterministic failure, so it must surface (not be retried)
        task = Task(
            name="broken",
            dataset=[Sample(id="s", input="", target="x")],
            solvers=[],
            scorer=CodeSimilarityScorer(),
        )
        plan = Plan("p")
        plan.add_eval(task, "sim/o3", epochs=1)
        with pytest.raises(GenerationError, match="empty prompt"):
            run(plan, executor=make())

    def test_empty_plan(self):
        assert AsyncExecutor(2).execute([]) == {}
        assert BatchingExecutor().execute([]) == {}


class TestAsyncRetry:
    def test_transient_failures_are_retried(self):
        provider = FlakyProvider("flaky/recovers", fail_times=2)
        plan = Plan("p")
        plan.add_eval(simple_task("flaky-task"), Model(provider), epochs=1)
        executor = AsyncExecutor(
            2, retry=RetryPolicy(max_attempts=3, base_delay=0.0)
        )
        outcome = run(plan, executor=executor)
        assert provider.calls == 3  # 2 failures + 1 success
        assert outcome.stats.generated == 1
        [result] = outcome.results.values()
        assert result.completion == "```\nok\n```"

    def test_attempts_are_bounded(self):
        provider = FlakyProvider("flaky/hopeless", fail_times=100)
        plan = Plan("p")
        plan.add_eval(simple_task("hopeless-task"), Model(provider), epochs=1)
        executor = AsyncExecutor(
            2, retry=RetryPolicy(max_attempts=3, base_delay=0.0)
        )
        with pytest.raises(ModelError, match="429"):
            run(plan, executor=executor)
        assert provider.calls == 3

    def test_deterministic_model_errors_are_not_retried(self):
        class AlwaysInvalid:
            name = "flaky/invalid"
            calls = 0

            def generate(self, messages, config):
                AlwaysInvalid.calls += 1
                raise GenerationError("malformed request")

        plan = Plan("p")
        plan.add_eval(simple_task("invalid-task"), Model(AlwaysInvalid()),
                      epochs=1)
        with pytest.raises(GenerationError, match="malformed"):
            run(plan, executor=AsyncExecutor(
                2, retry=RetryPolicy(max_attempts=5, base_delay=0.0)))
        assert AlwaysInvalid.calls == 1

    def test_retry_policy_validation_and_backoff(self):
        with pytest.raises(HarnessError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(HarnessError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)
        policy = RetryPolicy(base_delay=0.1, max_delay=0.3)
        assert [policy.delay(a) for a in range(4)] == [0.1, 0.2, 0.3, 0.3]
        assert policy.is_retryable(ModelError("boom"))
        assert not policy.is_retryable(GenerationError("boom"))
        assert not policy.is_retryable(ValueError("boom"))

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(HarnessError, match="max_concurrency"):
            AsyncExecutor(0)


class TestAsyncNativeProvider:
    def test_async_native_provider_runs_on_the_loop(self):
        class NativeAsync:
            name = "anative/echo"
            agenerate_calls = 0

            async def agenerate(self, messages, config):
                NativeAsync.agenerate_calls += 1
                return echo_output(self.name)

            def generate(self, messages, config):  # pragma: no cover - guard
                raise AssertionError("sync path must not be used")

        provider = NativeAsync()
        assert as_async(provider) is provider
        plan = Plan("p")
        plan.add_eval(simple_task("native-async-task"), Model(provider),
                      epochs=2)
        outcome = run(plan, executor=AsyncExecutor(2))
        assert NativeAsync.agenerate_calls == 2
        assert outcome.stats.generated == 2

    def test_sync_provider_is_adapted(self):
        provider = get_model("sim/o3").provider
        adapted = as_async(provider)
        assert adapted is not provider
        assert adapted.name == provider.name


class TestBatchedGeneration:
    def test_one_batch_call_per_model_group(self, monkeypatch):
        batch_calls = []
        real = SimulatedModel.generate_batch

        def recording_batch(self, requests):
            batch_calls.append((self.name, len(requests)))
            return real(self, requests)

        def no_single(self, messages, config):  # pragma: no cover - guard
            raise AssertionError(
                "batched execution must not fall back to generate()"
            )

        monkeypatch.setattr(SimulatedModel, "generate_batch", recording_batch)
        monkeypatch.setattr(SimulatedModel, "generate", no_single)
        grid = table1_sweep(BatchingExecutor())
        assert sorted(batch_calls) == [
            ("sim/claude-sonnet-4", 6),
            ("sim/gemini-2.5-pro", 6),
            ("sim/llama-3.3-70b", 6),
            ("sim/o3", 6),
        ]
        assert grid.cells  # sweep actually produced results

    def test_simulated_batch_matches_per_call_generate(self):
        model = get_model("sim/gemini-2.5-pro")
        prompts = [
            "Provide the workflow configuration file for the Wilkins "
            "workflow system.",
            "Provide the workflow configuration file for the Henson "
            "workflow system.",
        ]
        requests = [
            ([ChatMessage.user(p)], GenerateConfig(seed=seed))
            for p in prompts
            for seed in (0, 1)
        ]
        batched = model.provider.generate_batch(requests)
        singles = [model.provider.generate(m, c) for m, c in requests]
        assert [o.completion for o in batched] == [
            o.completion for o in singles
        ]
        assert [o.usage for o in batched] == [o.usage for o in singles]

    def test_provider_without_batch_support_falls_back(self):
        class PlainEcho:
            name = "plain/echo-nobatch"
            calls = 0

            def generate(self, messages, config):
                PlainEcho.calls += 1
                return echo_output(self.name)

        plan = Plan("p")
        plan.add_eval(simple_task("nobatch-task"), Model(PlainEcho()),
                      epochs=3)
        outcome = run(plan, executor=BatchingExecutor())
        assert PlainEcho.calls == 3
        assert outcome.stats.generated == 3

    def test_wrong_batch_size_is_detected(self):
        class Lossy:
            name = "plain/echo-lossy"
            calls = 0

            def generate(self, messages, config):
                Lossy.calls += 1
                return echo_output(self.name)

            def generate_batch(self, requests):
                return [echo_output(self.name)]  # one short

        plan = Plan("p")
        plan.add_eval(simple_task("lossy-task"), Model(Lossy()), epochs=2)
        # the Model layer detects the short batch...
        with pytest.raises(ModelError, match="outputs"):
            get_model("plain/echo-lossy").generate_batch(
                [("a", None), ("b", None)]
            )
        # ...and the executor heals it by driving the group per-request
        outcome = run(plan, executor=BatchingExecutor())
        assert Lossy.calls == 2
        assert outcome.stats.generated == 2

    def test_group_units_by_model_preserves_plan_order(self):
        plan = Plan("p")
        for system in ("wilkins", "adios2"):
            task = configuration_task(system)
            for model in ("sim/o3", "sim/claude-sonnet-4"):
                plan.add_eval(task, model, epochs=2)
        groups = group_units_by_model(plan.units)
        assert sorted(groups) == ["sim/claude-sonnet-4", "sim/o3"]
        for model, units in groups.items():
            assert all(u.model == model for u in units)
            uids = [u.uid for u in units]
            plan_order = [u.uid for u in plan.units if u.model == model]
            assert uids == plan_order

    def test_model_wrapper_generate_batch(self):
        model = get_model("sim/o3")
        prompt = ("Provide the workflow configuration file for the Wilkins "
                  "workflow system.")
        outputs = model.generate_batch([
            (prompt, GenerateConfig(seed=0)),
            (prompt, None),  # defaults applied like Model.generate
        ])
        assert len(outputs) == 2
        assert outputs[0].completion == outputs[1].completion

    def test_invalid_group_concurrency_rejected(self):
        with pytest.raises(HarnessError, match="group_concurrency"):
            BatchingExecutor(group_concurrency=0)


class TestScheduling:
    def make_plan(self) -> Plan:
        plan = Plan("p")
        for system in ("wilkins", "adios2"):
            task = configuration_task(system)
            for model in ("sim/o3", "sim/llama-3.3-70b"):
                plan.add_eval(task, model, epochs=2)
        return plan

    def test_plan_order_scheduler_is_identity(self):
        units = self.make_plan().units
        assert PlanOrderScheduler().order(units) == list(units)

    def test_adaptive_orders_longest_expected_first(self):
        cost = ExpectedCostModel()
        cost.observe("sim/llama-3.3-70b", 0.5)
        cost.observe("sim/o3", 0.01)
        ordered = AdaptiveScheduler(cost).order(self.make_plan().units)
        models = [u.model for u in ordered]
        assert models == (["sim/llama-3.3-70b"] * 4 + ["sim/o3"] * 4)
        # ties keep plan order: the sort must be stable within a model
        llama_uids = [u.uid for u in ordered if u.model == "sim/llama-3.3-70b"]
        plan_uids = [u.uid for u in self.make_plan().units
                     if u.model == "sim/llama-3.3-70b"]
        assert llama_uids == plan_uids

    def test_cold_cost_model_degrades_to_plan_order(self):
        units = self.make_plan().units
        assert AdaptiveScheduler().order(units) == list(units)

    def test_run_trains_the_cost_model_online(self):
        scheduler = AdaptiveScheduler()
        outcome = run(self.make_plan(), scheduler=scheduler)
        estimates = scheduler.cost_model.snapshot()
        assert set(estimates) == {"sim/o3", "sim/llama-3.3-70b"}
        assert all(v > 0 for v in estimates.values())
        assert scheduler.cost_model.observations == outcome.stats.generated
        assert outcome.stats.generation_seconds > 0

    def test_adaptive_schedule_is_bit_identical(self):
        scheduler = AdaptiveScheduler()
        run(self.make_plan(), scheduler=scheduler)  # train
        baseline = run(self.make_plan())
        adaptive = run(self.make_plan(), scheduler=scheduler)
        a = sorted((uid, r.score["bleu"]) for uid, r in baseline.results.items())
        b = sorted((uid, r.score["bleu"]) for uid, r in adaptive.results.items())
        assert a == b

    def test_unknown_model_estimated_from_known_ones(self):
        cost = ExpectedCostModel()
        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=1)
        [unit] = plan.units
        assert cost.expected(unit) == 0.0
        cost.observe("sim/a", 0.2)
        cost.observe("sim/b", 0.4)
        assert cost.expected(unit) == pytest.approx(0.3)

    def test_ema_update(self):
        cost = ExpectedCostModel(alpha=0.5)
        cost.observe("m", 1.0)
        cost.observe("m", 2.0)
        assert cost.snapshot()["m"] == pytest.approx(1.5)
        cost.observe("m", 0.0)  # non-positive samples carry no signal
        assert cost.snapshot()["m"] == pytest.approx(1.5)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(HarnessError, match="alpha"):
            ExpectedCostModel(alpha=0.0)

    def test_scheduler_must_return_a_permutation(self):
        class DroppingScheduler:
            def order(self, units):
                return list(units)[:-1]

        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=2)
        with pytest.raises(HarnessError, match="permutation"):
            run(plan, scheduler=DroppingScheduler())

    def test_cached_units_are_not_observed(self):
        cache = InMemoryResultCache()
        run(self.make_plan(), cache=cache)
        scheduler = AdaptiveScheduler()
        warm = run(self.make_plan(), cache=cache, scheduler=scheduler)
        assert warm.stats.generated == 0
        assert scheduler.cost_model.observations == 0
        assert warm.stats.generation_seconds == 0.0


class TestThreadedExecutorCloseRegression:
    @pytest.mark.parametrize("make", [
        lambda: __import__("repro.runtime", fromlist=["ThreadedExecutor"])
        .ThreadedExecutor(2),
        lambda: AsyncExecutor(2),
    ], ids=["threaded", "async"])
    def test_context_manager_after_close_raises(self, make):
        executor = make()
        executor.close()
        with pytest.raises(HarnessError, match="closed"):
            with executor:
                pass  # pragma: no cover - must not be reached

    def test_async_pool_persists_across_executes(self):
        executor = AsyncExecutor(2)
        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=1)
        run(plan, executor=executor)
        pool = executor._pool
        assert pool is not None
        plan2 = Plan("p2")
        plan2.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        run(plan2, executor=executor)
        assert executor._pool is pool, "execute() must reuse the lazy pool"
        executor.close()
        assert executor._pool is None
        # transparent reopen on plain execute, like ThreadedExecutor
        run(plan2, executor=executor)
        assert executor._pool is not None
        executor.close()

    def test_execute_after_close_still_reopens(self):
        from repro.runtime import ThreadedExecutor

        executor = ThreadedExecutor(2)
        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=1)
        run(plan, executor=executor)
        executor.close()
        # the documented transparent reopen on plain execute() survives,
        # and afterwards the executor is context-manager-safe again
        run(plan, executor=executor)
        with executor:
            pass
        assert executor._pool is None
