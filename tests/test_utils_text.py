"""Code-fence extraction and chatter stripping."""

from __future__ import annotations

from repro.utils.text import (
    dedent_strip,
    extract_code_blocks,
    extract_first_code_block,
    indent_of,
    line_count,
    normalize_newlines,
    strip_markdown_chatter,
)


class TestNormalizeNewlines:
    def test_crlf(self):
        assert normalize_newlines("a\r\nb\rc\nd") == "a\nb\nc\nd"


class TestDedentStrip:
    def test_removes_common_indent_and_outer_blanks(self):
        assert dedent_strip("\n    a\n      b\n") == "a\n  b"


class TestExtractCodeBlocks:
    def test_single_block_with_language(self):
        text = "prose\n```yaml\ntasks:\n- func: p\n```\nafter"
        blocks = extract_code_blocks(text)
        assert blocks == [("yaml", "tasks:\n- func: p")]

    def test_multiple_blocks(self):
        text = "```\none\n```\nmiddle\n```c\ntwo\n```"
        blocks = extract_code_blocks(text)
        assert [b[0] for b in blocks] == ["", "c"]

    def test_no_blocks(self):
        assert extract_code_blocks("just text") == []


class TestExtractFirstCodeBlock:
    def test_prefers_longest_block(self):
        text = "```sh\nrun.sh\n```\n```c\nint main() { return 0; }\n```"
        assert "int main" in extract_first_code_block(text)

    def test_fallback_to_text(self):
        assert extract_first_code_block("plain") == "plain"

    def test_no_fallback(self):
        assert extract_first_code_block("plain", fallback_to_text=False) == ""


class TestStripMarkdownChatter:
    def test_fenced_response(self):
        text = "Sure, here is the config.\n```yaml\ntasks:\n- func: p\n```\nHope it helps!"
        assert strip_markdown_chatter(text) == "tasks:\n- func: p"

    def test_unfenced_chatter_prefix_removed(self):
        text = "Sure, here is the file\ntasks:\n- func: p"
        assert strip_markdown_chatter(text) == "tasks:\n- func: p"

    def test_plain_artifact_untouched(self):
        artifact = "tasks:\n- func: p"
        assert strip_markdown_chatter(artifact) == artifact


class TestLineHelpers:
    def test_line_count_ignores_blanks(self):
        assert line_count("a\n\n  \nb\n") == 2

    def test_indent_of(self):
        assert indent_of("    x") == "    "
        assert indent_of("x") == ""
