"""Shared dataflow executor: dependency scheduling, failure propagation."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import pytest

from repro.errors import WorkflowError
from repro.workflows.dataflow import DataflowExecutor


@pytest.fixture()
def executor():
    ex = DataflowExecutor(max_workers=4, label="test")
    yield ex
    ex.shutdown()


class TestSubmission:
    def test_simple_result(self, executor):
        assert executor.submit(lambda: 42).result(timeout=10) == 42

    def test_args_kwargs(self, executor):
        future = executor.submit(lambda a, b=0: a + b, (10,), {"b": 5})
        assert future.result(timeout=10) == 15

    def test_future_args_resolved(self, executor):
        upstream = executor.submit(lambda: 7)
        downstream = executor.submit(lambda x: x * 2, (upstream,))
        assert downstream.result(timeout=10) == 14

    def test_future_kwargs_resolved(self, executor):
        upstream = executor.submit(lambda: 3)
        downstream = executor.submit(lambda x=0: x + 1, (), {"x": upstream})
        assert downstream.result(timeout=10) == 4

    def test_explicit_depends_on_orders_execution(self, executor):
        order = []
        gate = threading.Event()

        def first():
            gate.wait(5)
            order.append("first")

        def second():
            order.append("second")

        f1 = executor.submit(first)
        f2 = executor.submit(second, depends_on=[f1])
        gate.set()
        f2.result(timeout=10)
        assert order == ["first", "second"]

    def test_diamond_dependency(self, executor):
        top = executor.submit(lambda: 1)
        left = executor.submit(lambda x: x + 1, (top,))
        right = executor.submit(lambda x: x + 2, (top,))
        bottom = executor.submit(lambda a, b: a + b, (left, right))
        assert bottom.result(timeout=10) == 5

    def test_invalid_workers(self):
        with pytest.raises(WorkflowError):
            DataflowExecutor(max_workers=0)


class TestFailures:
    def test_task_exception_in_future(self, executor):
        future = executor.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(timeout=10)

    def test_dependency_failure_aborts_downstream(self, executor):
        bad = executor.submit(lambda: 1 / 0)
        downstream = executor.submit(lambda x: x, (bad,))
        with pytest.raises(WorkflowError, match="dependency failed"):
            downstream.result(timeout=10)

    def test_submit_after_shutdown_rejected(self):
        ex = DataflowExecutor(max_workers=1)
        ex.shutdown()
        with pytest.raises(WorkflowError, match="shut down"):
            ex.submit(lambda: 1)


class TestIntrospection:
    def test_records_and_counts(self, executor):
        f = executor.submit(lambda: 1, name="one")
        f.result(timeout=10)
        # allow state writeback
        deadline = time.monotonic() + 5
        while executor.counts()["done"] < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        records = executor.records()
        assert [r.name for r in records] == ["one"]
        assert executor.counts()["done"] == 1

    def test_wait_all(self, executor):
        futures = [executor.submit(lambda i=i: i) for i in range(8)]
        executor.wait_all(timeout=10)
        assert [f.result() for f in futures] == list(range(8))

    def test_wait_all_propagates_nothing_on_failure(self, executor):
        executor.submit(lambda: 1 / 0)
        # wait_all returns even when tasks failed (exception() consumes them)
        executor.wait_all(timeout=10)
        assert executor.counts()["failed"] == 1

    def test_dedup_dependencies(self, executor):
        shared: Future = executor.submit(lambda: 5)
        fut = executor.submit(
            lambda a, b: a + b, (shared, shared), depends_on=[shared]
        )
        assert fut.result(timeout=10) == 10
