"""Henson substrate: cooperative scheduler, C-flavoured API, hwl, validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, WorkflowError
from repro.workflows.henson import (
    HensonRuntime,
    Puppet,
    parse_hwl,
    render_hwl,
    validate_config,
    validate_task_code,
)
from repro.workflows.henson import api as henson


class TestScheduler:
    def test_producer_consumer_lockstep(self):
        def producer():
            for t in range(4):
                henson.henson_save_int("t", t)
                henson.henson_save_array("data", np.full(3, t, dtype=float))
                henson.henson_yield()
            return "done"

        def consumer():
            seen = []
            while henson.henson_active():
                seen.append((henson.henson_load_int("t"),
                             float(henson.henson_load_array("data").sum())))
                henson.henson_yield()
            return seen

        runtime = HensonRuntime(
            [Puppet("producer", producer, driver=True), Puppet("consumer", consumer)]
        )
        results = runtime.run()
        assert results["producer"] == "done"
        assert results["consumer"] == [(0, 0.0), (1, 3.0), (2, 6.0), (3, 9.0)]

    def test_yield_counts_tracked(self):
        def p():
            for _ in range(3):
                henson.henson_yield()

        runtime = HensonRuntime([Puppet("p", p)])
        runtime.run()
        assert runtime.yield_counts() == {"p": 3}

    def test_three_puppets_round_robin_order(self):
        trace: list[str] = []

        def make(name, turns):
            def puppet():
                for _ in range(turns):
                    trace.append(name)
                    henson.henson_yield()

            return puppet

        runtime = HensonRuntime(
            [Puppet("a", make("a", 2)), Puppet("b", make("b", 2)), Puppet("c", make("c", 2))]
        )
        runtime.run()
        assert trace == ["a", "b", "c", "a", "b", "c"]

    def test_first_puppet_defaults_to_driver(self):
        def short():
            henson.henson_yield()

        def looper():
            n = 0
            while henson.henson_active():
                n += 1
                henson.henson_yield()
            return n

        runtime = HensonRuntime([Puppet("short", short), Puppet("loop", looper)])
        results = runtime.run()
        assert results["loop"] >= 1

    def test_henson_stop(self):
        def stopper():
            henson.henson_yield()
            henson.henson_stop()

        def looper():
            n = 0
            while henson.henson_active():
                n += 1
                henson.henson_yield()
            return n

        runtime = HensonRuntime(
            [Puppet("stopper", stopper, driver=True), Puppet("loop", looper)]
        )
        assert runtime.run()["loop"] >= 1

    def test_puppet_exception_propagates(self):
        def bad():
            raise RuntimeError("puppet exploded")

        with pytest.raises(WorkflowError, match="puppet exploded"):
            HensonRuntime([Puppet("bad", bad)]).run()

    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkflowError, match="duplicate"):
            HensonRuntime([Puppet("x", lambda: None), Puppet("x", lambda: None)])

    def test_empty_rejected(self):
        with pytest.raises(WorkflowError):
            HensonRuntime([])

    def test_zero_copy_semantics(self):
        """Arrays pass by reference — consumer sees producer's buffer."""
        captured = {}

        def producer():
            arr = np.zeros(4)
            henson.henson_save_array("shared", arr)
            captured["arr"] = arr
            henson.henson_yield()

        def consumer():
            loaded = henson.henson_load_array("shared")
            loaded[0] = 42.0
            henson.henson_yield()

        HensonRuntime(
            [Puppet("producer", producer, driver=True), Puppet("consumer", consumer)]
        ).run()
        assert captured["arr"][0] == 42.0


class TestApiFunctions:
    def test_outside_runtime_inactive(self):
        assert henson.henson_active() is False
        henson.henson_yield()  # no-op standalone

    def test_save_outside_runtime_raises(self):
        with pytest.raises(WorkflowError, match="outside"):
            henson.henson_save_int("x", 1)

    def test_typed_saves(self):
        results = {}

        def puppet():
            henson.henson_save_int("i", 7)
            henson.henson_save_float("f", 1.5)
            henson.henson_save_double("d", 2.5)
            henson.henson_save_size_t("s", 10)
            henson.henson_save_pointer("p", {"k": 1})
            results["i"] = henson.henson_load_int("i")
            results["f"] = henson.henson_load_float("f")
            results["d"] = henson.henson_load_double("d")
            results["s"] = henson.henson_load_size_t("s")
            results["p"] = henson.henson_load_pointer("p")
            results["exists"] = henson.henson_exists("i")
            results["missing"] = henson.henson_exists("zzz")

        HensonRuntime([Puppet("t", puppet)]).run()
        assert results == {
            "i": 7, "f": 1.5, "d": 2.5, "s": 10, "p": {"k": 1},
            "exists": True, "missing": False,
        }

    def test_negative_size_t_rejected(self):
        def puppet():
            with pytest.raises(WorkflowError):
                henson.henson_save_size_t("s", -1)

        HensonRuntime([Puppet("t", puppet)]).run()

    def test_array_count_mismatch_rejected(self):
        def puppet():
            with pytest.raises(WorkflowError, match="count"):
                henson.henson_save_array("a", np.zeros(3), count=5)

        HensonRuntime([Puppet("t", puppet)]).run()

    def test_load_missing_raises(self):
        def puppet():
            with pytest.raises(WorkflowError, match="no saved value"):
                henson.henson_load_int("never")

        HensonRuntime([Puppet("t", puppet)]).run()


class TestHwl:
    GOOD = (
        "# comment\n"
        "producer = ./producer grid particles on 3 procs\n"
        "consumer1 = ./consumer1 grid on 1 procs\n"
        "consumer2 = ./consumer2 particles\n"
    )

    def test_parse(self):
        script = parse_hwl(self.GOOD)
        assert [p.name for p in script.puppets] == ["producer", "consumer1", "consumer2"]
        producer = script.puppet("producer")
        assert producer.executable == "./producer"
        assert producer.args == ("grid", "particles")
        assert producer.nprocs == 3
        assert script.puppet("consumer2").nprocs == 1  # default

    def test_total_procs(self):
        assert parse_hwl(self.GOOD).total_procs() == 5

    def test_to_graph(self):
        graph = parse_hwl(self.GOOD).to_graph()
        assert len(graph) == 3
        assert graph.task("producer").nprocs == 3

    def test_render_roundtrip(self):
        script = parse_hwl(self.GOOD)
        again = parse_hwl(render_hwl(script))
        assert [p.name for p in again.puppets] == [p.name for p in script.puppets]
        assert again.puppet("producer").nprocs == 3

    def test_bad_line(self):
        with pytest.raises(ConfigError, match="line 1"):
            parse_hwl("this is not an assignment")

    def test_duplicate_puppet(self):
        with pytest.raises(ConfigError, match="duplicate"):
            parse_hwl("a = ./x\na = ./y")

    def test_empty_script(self):
        with pytest.raises(ConfigError, match="no puppets"):
            parse_hwl("# nothing here\n")

    def test_unknown_puppet_lookup(self):
        with pytest.raises(ConfigError):
            parse_hwl(self.GOOD).puppet("ghost")


class TestValidators:
    def test_good_config(self):
        assert validate_config(TestHwl.GOOD).ok

    def test_yaml_config_rejected_as_wrong_artifact(self):
        report = validate_config("tasks:\n- func: producer")
        assert not report.ok
        assert any(d.code == "structure" for d in report.errors())

    def test_reference_task_code_ok(self):
        from repro.core.assets import annotated_producer

        report = validate_task_code(annotated_producer("henson"))
        assert report.ok, report.render()

    def test_paper_hallucinations_flagged(self):
        code = "while (henson_active()) { henson_put(\"x\", 1); henson_yield(); }"
        report = validate_task_code(code)
        symbols = {d.symbol for d in report.hallucinations()}
        assert "henson_put" in symbols

    def test_suggestion_points_to_real_api(self):
        report = validate_task_code("henson_save_it(\"x\", 1);")
        hall = report.hallucinations()[0]
        assert hall.suggestion in ("henson_save_int", "henson_save_size_t")

    def test_mpi_lifetime_warning(self):
        code = (
            "MPI_Init(&argc, &argv);\n"
            "while (henson_active()) { henson_save_int(\"t\", 1); "
            "henson_save_array(\"a\", a, 4, 4, 4); henson_yield(); }\n"
            "MPI_Finalize();"
        )
        report = validate_task_code(code)
        warning_symbols = {d.symbol for d in report.warnings()}
        assert {"MPI_Init", "MPI_Finalize"} <= warning_symbols
