"""Networked store service: protocol, server, client, RunConfig."""

from __future__ import annotations

import asyncio
import json
import pathlib
import socket
import struct
import threading
import time

import pytest

from repro.core.experiments import run_configuration
from repro.errors import (
    HarnessError,
    PersistError,
    RemoteStoreError,
    StoreError,
)
from repro.llm.types import ModelUsage
from repro.persist import RunStore
from repro.runtime import (
    InMemoryResultCache,
    Plan,
    RetryPolicy,
    RunConfig,
    SerialExecutor,
    ThreadedExecutor,
    run,
)
from repro.runtime.units import Generation
from repro.serve import (
    RemoteRunStore,
    StoreServer,
    TornFrameError,
    encode_frame,
    open_store,
    parse_store_url,
    read_frame,
    shard_for,
    write_frame,
)

SMALL = dict(models=["o3", "llama-3.3-70b"], systems=["adios2", "wilkins"], epochs=2)


def make_generation(i: int = 0) -> Generation:
    return Generation(
        key=f"{i:064x}",
        model="sim/gpt-4o",
        completion=f"serve payload #{i}\nwith ünïcode",
        usage=ModelUsage(input_tokens=10 + i, output_tokens=20 + i),
        elapsed_s=0.125 * i,
    )


FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05)


class ServerThread:
    """A StoreServer on its own event loop; TCP + unix, stoppable."""

    def __init__(
        self, root: pathlib.Path, *, shards: int = 2, port: int = 0
    ) -> None:
        self.root = root
        self._ready = threading.Event()
        self._boot_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self.port = 0
        self.unix_path = str(root.parent / f"{root.name}.sock")
        self._thread = threading.Thread(
            target=self._main, args=(shards, port), daemon=True
        )
        self._thread.start()
        assert self._ready.wait(timeout=30), "server did not come up"
        if self._boot_error is not None:
            raise self._boot_error

    def _main(self, shards: int, port: int) -> None:
        async def body() -> None:
            try:
                server = StoreServer(self.root, shards=shards)
                _, self.port = await server.start_tcp("127.0.0.1", port)
                await server.start_unix(self.unix_path)
            except BaseException as exc:
                self._boot_error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await server.aclose()

        asyncio.run(body())

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def tcp_url(self) -> str:
        return f"tcp://127.0.0.1:{self.port}"

    def client(self, **options) -> RemoteRunStore:
        options.setdefault("retry", FAST_RETRY)
        return open_store(self.tcp_url(), **options)

    def unix_client(self, **options) -> RemoteRunStore:
        options.setdefault("retry", FAST_RETRY)
        return open_store(f"unix://{self.unix_path}", **options)


@pytest.fixture()
def server(tmp_path):
    srv = ServerThread(tmp_path / "served")
    yield srv
    srv.stop()


class TestProtocol:
    def test_frame_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        payload = {"op": "ping", "data": ["x"] * 10, "n": 3}
        write_frame(a, payload)
        assert read_frame(b) == payload
        a.close()
        assert read_frame(b) is None  # clean EOF between frames
        b.close()

    def test_torn_body_raises(self):
        a, b = socket.socketpair()
        wire = encode_frame({"op": "ping"})
        a.sendall(wire[: len(wire) - 3])  # cut mid-body
        a.close()
        with pytest.raises(TornFrameError):
            read_frame(b)
        b.close()

    def test_torn_header_raises(self):
        a, b = socket.socketpair()
        a.sendall(b"\x00\x00")  # 2 of 4 length bytes
        a.close()
        with pytest.raises(TornFrameError):
            read_frame(b)
        b.close()

    def test_oversized_length_refused_before_allocation(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack(">I", (1 << 31)))
        with pytest.raises(RemoteStoreError, match="MAX_FRAME"):
            read_frame(b)
        a.close()
        b.close()

    def test_non_object_body_refused(self):
        a, b = socket.socketpair()
        body = json.dumps([1, 2, 3]).encode()
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(RemoteStoreError, match="JSON object"):
            read_frame(b)
        a.close()
        b.close()


class TestUrls:
    def test_parse_schemes(self):
        assert parse_store_url("runs/store") == ("local", "runs/store")
        assert parse_store_url("tcp://h:9045") == ("tcp", ("h", 9045))
        assert parse_store_url("repro+tcp://h:1") == ("tcp", ("h", 1))
        assert parse_store_url("unix:///tmp/s.sock") == ("unix", "/tmp/s.sock")
        assert parse_store_url("repro+unix:///tmp/s.sock") == (
            "unix",
            "/tmp/s.sock",
        )

    def test_malformed_urls_refused(self):
        with pytest.raises(StoreError, match="tcp://host:port"):
            parse_store_url("tcp://nohost")
        with pytest.raises(StoreError, match="unknown store URL scheme"):
            parse_store_url("ftp://h:1")

    def test_open_store_local_path(self, tmp_path):
        store = open_store(str(tmp_path / "local"))
        assert isinstance(store, RunStore)
        store.close()

    def test_open_store_rejects_client_options_on_local_path(self, tmp_path):
        with pytest.raises(StoreError, match="meaningless"):
            open_store(str(tmp_path / "local"), pool_size=2)


class TestSharding:
    def test_shard_for_is_stable_and_spread(self):
        keys = [f"{i:064x}" for i in range(512)]
        first = [shard_for(key, 4) for key in keys]
        assert first == [shard_for(key, 4) for key in keys]
        assert set(first) == {0, 1, 2, 3}  # all shards populated

    def test_shard_count_mismatch_refused(self, tmp_path, server):
        with pytest.raises(PersistError, match="--shards 2"):
            StoreServer(server.root, shards=5)

    def test_records_land_on_hashed_shards(self, server):
        gens = [make_generation(i) for i in range(32)]
        with server.client() as remote:
            remote.put_generations(gens)
        for gen in gens:
            shard = RunStore(
                server.root / f"shard-{shard_for(gen.key, 2):02d}"
            )
            assert shard.get_generation(gen.key) is not None
            shard.close()


class TestRemoteRoundTrip:
    def test_generations_roundtrip_and_cached_flag(self, server):
        gens = [make_generation(i) for i in range(20)]
        with server.client() as remote:
            remote.put_generations(gens)
            found = remote.get_generations([g.key for g in gens] + ["f" * 64])
        assert len(found) == 20
        assert found[gens[3].key].completion == gens[3].completion
        assert found[gens[3].key].usage == gens[3].usage
        cache = server.client().result_cache
        hit = cache.get(gens[0].key)
        assert hit is not None and hit.cached  # cache facade marks provenance

    def test_manifest_roundtrip_and_resume_linkage(self, server):
        plan = Plan("serve-test")
        from repro.core.experiments.configuration import configuration_task

        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=2)
        with server.client() as remote:
            first = run(plan, store=remote)
            second = run(plan, store=remote)
            listed = remote.manifests()
        assert first.manifest is not None
        assert second.manifest.resumed_from == first.manifest.run_id
        assert [m.run_id for m in listed] == [
            first.manifest.run_id,
            second.manifest.run_id,
        ]

    def test_server_errors_arrive_typed(self, server):
        with server.client() as remote:
            with pytest.raises(PersistError, match="unknown record kind"):
                remote.get_records("nope", ["k"])
            with pytest.raises(StoreError, match="unknown op"):
                remote.client.request({"op": "frobnicate"})

    def test_stats_sum_shards_and_root_is_url(self, server):
        with server.client() as remote:
            remote.put_generations([make_generation(i) for i in range(8)])
            stats = remote.stats()
            shards = remote.shard_stats()
        assert stats.root == server.tcp_url()
        assert stats.generations == 8
        assert stats.generations == sum(s.generations for s in shards)
        assert len(shards) == 2

    def test_unix_and_tcp_serve_identical_records(self, server):
        gens = [make_generation(i) for i in range(12)]
        with server.client() as tcp:
            tcp.put_generations(gens)
        with server.unix_client() as unix:
            found = unix.get_generations([g.key for g in gens])
            assert unix.ping()["shards"] == 2
        assert {k: g.completion for k, g in found.items()} == {
            g.key: g.completion for g in gens
        }


class TestFaultPaths:
    def test_torn_frame_mid_put_persists_nothing(self, server):
        with server.client() as remote:
            remote.put_generations([make_generation(0)])
            before = remote.stats().generations

        # a raw client dies mid-frame of a big put_records batch
        payloads = [
            {"kind": "gen", "key": f"{i:064x}", "model": "m", "completion": "c",
             "elapsed_s": 0.0, "input_tokens": 1, "output_tokens": 1}
            for i in range(100, 140)
        ]
        wire = encode_frame({"op": "put_records", "payloads": payloads})
        sock = socket.create_connection(("127.0.0.1", server.port))
        sock.sendall(wire[: len(wire) // 2])
        sock.close()  # torn mid-body
        time.sleep(0.1)

        with server.client() as remote:
            # nothing from the torn batch persisted; server still answers
            assert remote.stats().generations == before
            assert remote.ping()["server"] == "repro.serve/1"

    def test_client_reconnects_across_server_restart(self, tmp_path):
        srv = ServerThread(tmp_path / "served")
        gens = [make_generation(i) for i in range(10)]
        remote = srv.client()
        try:
            remote.put_generations(gens)
            first = remote.get_generations([g.key for g in gens[:5]])
            assert len(first) == 5

            port = srv.port
            srv.stop()  # connection in the pool goes stale
            srv = ServerThread(tmp_path / "served", port=port)

            # second batch: stale socket fails, RetryPolicy reconnects
            second = remote.get_generations([g.key for g in gens[5:]])
            assert len(second) == 5
            assert second[gens[7].key].completion == gens[7].completion
        finally:
            remote.close()
            srv.stop()

    def test_unreachable_server_raises_remote_store_error(self):
        url = "tcp://127.0.0.1:1"  # nothing listens on port 1
        remote = open_store(
            url, retry=RetryPolicy(max_attempts=2, base_delay=0.01)
        )
        with pytest.raises(RemoteStoreError, match="after 2 attempts"):
            remote.ping()
        remote.close()

    def test_remote_store_error_is_retryable_model_error(self):
        # the FaultPolicy mapping: network faults retry like provider faults
        assert RetryPolicy().is_retryable(RemoteStoreError("link down"))
        assert isinstance(RemoteStoreError("x"), StoreError)


class TestRemoteSweeps:
    def test_warm_remote_sweep_zero_generations_bit_identical(self, server):
        """Acceptance: remote warm pass = zero generations, same grid."""
        local = run_configuration(**SMALL)

        with server.client() as remote:
            cold = run_configuration(**SMALL, store=remote)
        with server.client() as remote:
            warm = run_configuration(**SMALL, store=remote)
            manifest = remote.latest_manifest()
        assert manifest.stats.generated == 0
        assert manifest.stats.scores_computed == 0
        for row in local.row_keys:
            for model in local.models:
                assert local.cell(row, model) == cold.cell(row, model)
                assert local.cell(row, model) == warm.cell(row, model)

    def test_two_tenants_share_one_server_bit_identical(self, server):
        grids: dict[str, object] = {}
        errors: list[BaseException] = []

        def tenant(name: str) -> None:
            try:
                with server.client() as remote:
                    grids[name] = run_configuration(
                        **SMALL,
                        config=RunConfig(
                            executor=ThreadedExecutor(max_workers=4),
                            store=remote,
                        ),
                    )
            except BaseException as exc:  # surfaced by the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant, args=(name,))
            for name in ("tenant-a", "tenant-b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        reference = run_configuration(**SMALL)
        for grid in grids.values():
            for row in reference.row_keys:
                for model in reference.models:
                    assert grid.cell(row, model) == reference.cell(row, model)


class TestRunConfig:
    def test_config_equals_legacy_kwargs_across_executors(self, tmp_path):
        executors = {
            "serial": SerialExecutor,
            "threaded": lambda: ThreadedExecutor(max_workers=4),
        }
        reference = run_configuration(**SMALL)
        for make in executors.values():
            via_kwargs = run_configuration(
                **SMALL, executor=make(), cache=InMemoryResultCache()
            )
            via_config = run_configuration(
                **SMALL,
                config=RunConfig(executor=make(), cache=InMemoryResultCache()),
            )
            for row in reference.row_keys:
                for model in reference.models:
                    assert via_kwargs.cell(row, model) == reference.cell(row, model)
                    assert via_config.cell(row, model) == reference.cell(row, model)

    def test_conflicting_knob_raises(self, tmp_path):
        from repro.core.experiments.configuration import configuration_task

        plan = Plan("conflict")
        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        with pytest.raises(HarnessError, match="exactly one place"):
            run(
                plan,
                config=RunConfig(executor=SerialExecutor()),
                executor=SerialExecutor(),
            )

    def test_unknown_knob_refused(self):
        with pytest.raises(HarnessError, match="unknown run knob"):
            RunConfig().merged_with_kwargs(warp_drive=1)

    def test_replace_and_describe(self):
        config = RunConfig(executor=SerialExecutor())
        cleared = config.replace(executor=None)
        assert cleared.executor is None and config.executor is not None
        assert "executor=" in config.describe()
        assert cleared.describe() == "RunConfig(defaults)"

    def test_from_url_local_and_remote(self, tmp_path, server):
        local = RunConfig.from_url(str(tmp_path / "store"))
        assert isinstance(local.store, RunStore)
        assert local.store_url == str(tmp_path / "store")
        local.store.close()

        remote = RunConfig.from_url(server.tcp_url())
        assert isinstance(remote.store, RemoteRunStore)
        remote.store.close()

        with pytest.raises(HarnessError, match="ambiguous"):
            RunConfig.from_url(server.tcp_url(), store=object())

    def test_evaluate_accepts_run_config(self):
        from repro.core.experiments.configuration import configuration_task
        from repro.core.task import evaluate

        task = configuration_task("adios2")
        via_config = evaluate(
            task, "sim/o3", epochs=1, run_config=RunConfig(executor=SerialExecutor())
        )
        via_kwargs = evaluate(task, "sim/o3", epochs=1, executor=SerialExecutor())
        assert via_config.samples[0].scores == via_kwargs.samples[0].scores


class TestStatsSchema:
    def test_all_cache_backends_carry_markers(self, tmp_path, server):
        from repro.runtime import FilesystemResultCache

        with RunStore(tmp_path / "store") as store:
            backends = [
                InMemoryResultCache(),
                FilesystemResultCache(),
                store.result_cache,
                server.client().result_cache,
            ]
            for cache in backends:
                stats = cache.stats()
                assert stats["schema"] == "repro.stats/2"
                assert stats["kind"] == "result_cache"
                assert {"entries", "hits", "misses", "puts"} <= set(stats)

    def test_store_and_run_stats_round_trip(self, tmp_path):
        from repro.persist.store import StoreStats
        from repro.runtime import RunStats

        with RunStore(tmp_path / "store") as store:
            store.put_generations([make_generation(0)])
            payload = store.stats().as_dict()
        assert payload["schema"] == "repro.stats/2"
        assert payload["kind"] == "store"
        assert StoreStats.from_dict(payload) == store.stats()

        plan = Plan("schema")
        from repro.core.experiments.configuration import configuration_task

        plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        stats = run(plan).stats
        round_tripped = RunStats.from_dict(stats.as_dict())
        assert round_tripped == stats

    def test_pre_schema_manifest_payload_rehydrates(self, tmp_path):
        """Manifests written before the unified schema still load."""
        with RunStore(tmp_path / "store") as store:
            outcome = run(small_plan_for(tmp_path), store=store)
            path = (
                store.root / "manifests" / f"{outcome.manifest.run_id}.json"
            )
            payload = json.loads(path.read_text())
            # strip the markers, as an old writer would have
            payload["stats"] = {
                k: v
                for k, v in payload["stats"].items()
                if k not in ("schema", "kind")
            }
            path.write_text(json.dumps(payload))
            old = store.manifest(outcome.manifest.run_id)
        assert old is not None
        assert old.stats == outcome.manifest.stats


def small_plan_for(tmp_path) -> Plan:
    from repro.core.experiments.configuration import configuration_task

    plan = Plan("serve-schema-test")
    plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
    return plan
