"""Durable run store: records, segments, locking, manifests, resume, CLI."""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.experiments import run_configuration
from repro.core.scorers import CodeSimilarityScorer, Score
from repro.errors import PersistError, RecordCorruptError, StoreError
from repro.llm.types import ModelUsage
from repro.persist import (
    RunStore,
    decode_record,
    disk_score_key,
    encode_record,
    plan_fingerprint,
    stable_fingerprint_token,
)
from repro.persist.segments import list_segments, segment_name, segment_number
from repro.runtime import (
    FilesystemResultCache,
    InMemoryResultCache,
    Plan,
    ResultCache,
    run,
)
from repro.runtime.units import Generation
from repro.store import SimFilesystem

SMALL = dict(models=["o3", "llama-3.3-70b"], systems=["adios2", "wilkins"], epochs=2)


def make_generation(i: int = 0, completion: str = "payload") -> Generation:
    return Generation(
        key=f"{i:064x}",
        model="sim/gpt-4o",
        completion=f"{completion} #{i}\nwith a second line and ünïcode",
        usage=ModelUsage(input_tokens=10 + i, output_tokens=20 + i),
        elapsed_s=0.125 * i,
    )


def small_plan() -> Plan:
    from repro.core.experiments.configuration import configuration_task

    plan = Plan("persist-test")
    plan.add_eval(configuration_task("adios2"), "sim/o3", epochs=2)
    return plan


class TestRecords:
    def test_roundtrip(self):
        from repro.persist.records import (
            generation_from_payload,
            generation_payload,
        )

        gen = make_generation(3)
        line = encode_record(generation_payload(gen))
        assert generation_from_payload(decode_record(line)) == gen

    def test_checksum_detects_bit_flip(self):
        from repro.persist.records import generation_payload

        line = bytearray(encode_record(generation_payload(make_generation())))
        line[80] ^= 0x01  # flip one payload bit
        with pytest.raises(RecordCorruptError):
            decode_record(bytes(line))

    def test_torn_tail_rejected(self):
        from repro.persist.records import generation_payload

        line = encode_record(generation_payload(make_generation()))
        with pytest.raises(RecordCorruptError):
            decode_record(line[:-10])

    def test_stable_fingerprint_tokens(self):
        from repro.utils.text import strip_markdown_chatter

        assert stable_fingerprint_token(("a", 1, 2.5, None, True)) is not None
        token = stable_fingerprint_token(strip_markdown_chatter)
        assert token == "repro.utils.text:strip_markdown_chatter"
        assert stable_fingerprint_token(lambda x: x) is None
        assert stable_fingerprint_token(("ok", lambda x: x)) is None
        assert stable_fingerprint_token(object()) is None

    def test_disk_score_key_for_default_scorer(self):
        scorer = CodeSimilarityScorer()
        key = ("a" * 64, "b" * 64, scorer.fingerprint)
        assert disk_score_key(key) is not None
        # same logical scorer in "another process" -> same durable key
        assert disk_score_key(("a" * 64, "b" * 64, CodeSimilarityScorer().fingerprint)) == disk_score_key(key)

    def test_disk_score_key_refuses_unstable_fingerprints(self):
        lam = lambda completion: completion  # noqa: E731
        scorer = CodeSimilarityScorer(extractor=lam)
        assert disk_score_key(("a" * 64, "b" * 64, scorer.fingerprint)) is None
        assert disk_score_key("not-a-tuple") is None


class TestSegments:
    def test_names_roundtrip(self):
        assert segment_number(segment_name(7)) == 7
        assert segment_number("segment-000007.seg") == 7
        assert segment_number("other.txt") is None
        assert segment_number("segment-xx.seg") is None


class TestRunStore:
    def test_put_get_roundtrip_and_reopen(self, tmp_path):
        store = RunStore(tmp_path / "store")
        gens = [make_generation(i) for i in range(5)]
        store.put_generations(gens)
        for gen in gens:
            assert store.get_generation(gen.key) == gen
        assert store.get_generation("f" * 64) is None
        store.close()

        reopened = RunStore(tmp_path / "store")
        for gen in gens:
            assert reopened.get_generation(gen.key) == gen

    def test_open_missing_without_create(self, tmp_path):
        with pytest.raises(StoreError):
            RunStore(tmp_path / "absent", create=False)
        with pytest.raises(PersistError):
            RunStore(tmp_path / "store", max_segment_bytes=0)

    def test_open_readonly_never_scaffolds_foreign_directories(self, tmp_path):
        """create=False on a non-store dir errors and leaves it untouched."""
        plain = tmp_path / "plain"
        plain.mkdir()
        (plain / "unrelated.txt").write_text("hello")
        with pytest.raises(StoreError, match="no store at"):
            RunStore(plain, create=False)
        assert sorted(p.name for p in plain.iterdir()) == ["unrelated.txt"]

    def test_store_path_that_is_a_file_is_a_store_error(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("not a store")
        with pytest.raises(StoreError, match="not a directory"):
            RunStore(target)
        with pytest.raises(StoreError, match="not a directory"):
            RunStore(target, create=False)

    def test_concurrent_gc_does_not_cold_start_other_handles(self, tmp_path):
        """A handle whose index predates another process's gc stays warm."""
        a = RunStore(tmp_path / "store")
        b = RunStore(tmp_path / "store")
        gens = [make_generation(i) for i in range(5)]
        a.put_generations(gens)
        for gen in gens:  # b indexes the pre-compaction segment
            assert b.get_generation(gen.key) is not None
        a.gc()  # compacts into a new segment, deletes the one b indexed
        for gen in gens:
            assert b.get_generation(gen.key) == gen  # refresh, not a miss

    def test_segment_rotation(self, tmp_path):
        store = RunStore(tmp_path / "store", max_segment_bytes=512)
        for i in range(10):
            store.put_generation(make_generation(i))
        segments = list_segments(tmp_path / "store" / "segments")
        assert len(segments) > 1
        for i in range(10):
            assert store.get_generation(make_generation(i).key) is not None

    def test_two_instances_share_one_directory(self, tmp_path):
        """Two store handles (as two processes would hold) stay coherent."""
        a = RunStore(tmp_path / "store")
        b = RunStore(tmp_path / "store")
        gen = make_generation(1)
        a.put_generation(gen)
        assert b.get_generation(gen.key) == gen  # b discovers a's append
        gen2 = make_generation(2)
        b.put_generation(gen2)
        assert a.get_generation(gen2.key) == gen2

    def test_corrupt_record_skipped_with_warning(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put_generations([make_generation(i) for i in range(3)])
        store.close()
        seg = list_segments(tmp_path / "store" / "segments")[0]
        raw = seg.read_bytes().splitlines(keepends=True)
        raw[1] = b"deadbeef " + raw[1].split(b" ", 1)[1]  # break one checksum
        seg.write_bytes(b"".join(raw))
        (tmp_path / "store" / "index.json").unlink()  # force a rescan

        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            fresh = RunStore(tmp_path / "store")
        assert fresh.get_generation(make_generation(0).key) is not None
        assert fresh.get_generation(make_generation(1).key) is None  # skipped
        assert fresh.get_generation(make_generation(2).key) is not None
        report = fresh.verify()
        assert not report.clean
        assert any("checksum mismatch" in problem for problem in report.problems)

    def test_torn_tail_skipped_and_healed_by_next_append(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put_generation(make_generation(0))
        store.close()
        seg = list_segments(tmp_path / "store" / "segments")[0]
        with seg.open("ab") as handle:
            handle.write(b"abc123 {\"kind\": torn-partial-record")  # no newline
        (tmp_path / "store" / "index.json").unlink()

        with pytest.warns(RuntimeWarning, match="torn tail"):
            fresh = RunStore(tmp_path / "store")
        assert fresh.get_generation(make_generation(0).key) is not None
        # the next append re-sees the torn bytes (warned again), terminates
        # them, and lands its own record cleanly after the healed garbage
        with pytest.warns(RuntimeWarning, match="torn tail"):
            fresh.put_generation(make_generation(1))
        assert fresh.get_generation(make_generation(1).key) is not None
        with pytest.warns(RuntimeWarning):
            again = RunStore(tmp_path / "store")
        assert again.get_generation(make_generation(1).key) is not None

    def test_gc_drops_stale_corrupt_and_orphans(self, tmp_path):
        store = RunStore(tmp_path / "store")
        gen = make_generation(0)
        store.put_generation(gen)
        store.put_generation(gen)  # duplicate -> stale line
        score = Score(values={"bleu": 50.0}, answer="x")
        store.put_score("c" * 64, gen.key, score)
        store.put_score("d" * 64, "9" * 64, score)  # orphan: no such generation
        stats = store.gc()
        assert stats.stale_dropped == 1
        assert stats.orphan_scores_dropped == 1
        assert stats.records_after == 2  # gen + attached score
        assert stats.bytes_after < stats.bytes_before
        assert store.get_generation(gen.key) == gen
        assert store.get_score("c" * 64) == score
        assert store.get_score("d" * 64) is None
        report = store.verify()
        assert report.clean and report.stale == 0

    def test_gc_heals_corruption(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put_generations([make_generation(i) for i in range(3)])
        store.close()
        seg = list_segments(tmp_path / "store" / "segments")[0]
        raw = seg.read_bytes().splitlines(keepends=True)
        raw[1] = b"deadbeef " + raw[1].split(b" ", 1)[1]
        seg.write_bytes(b"".join(raw))
        (tmp_path / "store" / "index.json").unlink()

        with pytest.warns(RuntimeWarning):
            fresh = RunStore(tmp_path / "store")
        gc_stats = fresh.gc()
        assert gc_stats.corrupt_dropped == 1
        assert fresh.verify().clean

    def test_stale_index_snapshot_is_discarded(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put_generation(make_generation(0))
        store.close()
        snapshot = tmp_path / "store" / "index.json"
        payload = json.loads(snapshot.read_text())
        payload["scanned"] = {"segment-000099.seg": 10}  # vanished segment
        snapshot.write_text(json.dumps(payload))
        fresh = RunStore(tmp_path / "store")  # falls back to a full scan
        assert fresh.get_generation(make_generation(0).key) is not None

        snapshot.write_text("{not json")
        assert RunStore(tmp_path / "store").get_generation(
            make_generation(0).key
        ) is not None

    def test_mismatched_index_entry_never_poisons_the_read_lru(self, tmp_path):
        """An index entry pointing at the wrong record raises every time —
        the mismatched payload must not be served from the LRU later."""
        store = RunStore(tmp_path / "store")
        a, b = make_generation(1), make_generation(2)
        store.put_generations([a, b])
        # poison: point a's index entry at b's record
        from repro.persist.records import index_key

        store._index[index_key("gen", a.key)] = store._index[
            index_key("gen", b.key)
        ]
        with pytest.raises(PersistError, match="index points"):
            store.get_generation(a.key)
        with pytest.raises(PersistError, match="index points"):
            store.get_generation(a.key)  # second read: not an LRU hit

    def test_rejects_bad_tuning_params(self, tmp_path):
        with pytest.raises(PersistError):
            RunStore(tmp_path / "store", read_cache_entries=-1)
        with pytest.raises(PersistError):
            RunStore(tmp_path / "store", snapshot_every=0)

    def test_get_generations_batched(self, tmp_path):
        store = RunStore(tmp_path / "store", max_segment_bytes=512)
        gens = [make_generation(i) for i in range(8)]  # spans several segments
        store.put_generations(gens)
        store.close()
        fresh = RunStore(tmp_path / "store")
        found = fresh.get_generations(
            [gen.key for gen in gens] + ["f" * 64]  # one absent key
        )
        assert set(found) == {gen.key for gen in gens}
        for gen in gens:
            assert found[gen.key] == gen

    def test_read_lru_can_be_disabled(self, tmp_path):
        store = RunStore(tmp_path / "store", read_cache_entries=0)
        gen = make_generation(0)
        store.put_generation(gen)
        assert store.get_generation(gen.key) == gen
        assert store.get_generation(gen.key) == gen
        stats = store.stats()
        assert stats.read_lru_hits == 0  # every read went to disk
        assert stats.read_lru_misses == 2
        assert stats.bytes_read > 0

    def test_read_lru_bounded_and_counted(self, tmp_path):
        store = RunStore(tmp_path / "store", read_cache_entries=2)
        gens = [make_generation(i) for i in range(3)]
        store.put_generations(gens)
        for gen in gens:  # 3 distinct reads into a 2-entry LRU
            store.get_generation(gen.key)
        store.get_generation(gens[2].key)  # still resident -> hit
        store.get_generation(gens[0].key)  # evicted -> disk again
        stats = store.stats()
        assert stats.read_lru_hits == 1
        assert stats.read_lru_misses == 4

    def test_debounced_snapshot_written_during_appends(self, tmp_path):
        store = RunStore(tmp_path / "store", snapshot_every=4)
        snapshot = tmp_path / "store" / "index.json"
        store.put_generations([make_generation(i) for i in range(3)])
        assert not snapshot.exists()  # below the debounce threshold
        store.put_generations([make_generation(i) for i in range(3, 8)])
        assert snapshot.exists()  # threshold crossed inside the append
        payload = json.loads(snapshot.read_text())
        assert len(payload["entries"]) == 8
        # a fresh handle seeded by the snapshot sees every record
        fresh = RunStore(tmp_path / "store")
        for i in range(8):
            assert fresh.get_generation(make_generation(i).key) is not None

    def test_stats_counts(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put_generations([make_generation(i) for i in range(4)])
        store.put_score("c" * 64, make_generation(0).key, Score({"bleu": 1.0}, "a"))
        stats = store.stats()
        assert stats.generations == 4
        assert stats.scores == 1
        assert stats.segments == 1
        assert stats.segment_bytes > 0
        assert "4 generation(s)" in stats.describe()


class TestDiskResultCache:
    def test_satisfies_result_cache_protocol(self, tmp_path):
        cache = RunStore(tmp_path / "store").result_cache
        assert isinstance(cache, ResultCache)

    @pytest.mark.parametrize("backend", ["memory", "fs", "disk"])
    def test_introspection_parity(self, backend, tmp_path):
        """All three backends expose the same len/stats surface."""
        if backend == "memory":
            cache = InMemoryResultCache()
        elif backend == "fs":
            cache = FilesystemResultCache(SimFilesystem())
        else:
            cache = RunStore(tmp_path / "store").result_cache
        gen = make_generation(1)
        assert len(cache) == 0
        assert cache.get(gen.key) is None
        cache.put(gen)
        hit = cache.get(gen.key)
        assert hit is not None and hit.cached
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert isinstance(stats["backend"], str)
        # read-path counters: present on every backend, live on disk
        assert stats["read_lru_hits"] >= 0
        assert stats["read_lru_misses"] >= 0
        assert stats["bytes_read"] >= 0
        if backend == "disk":
            assert stats["read_lru_misses"] >= 1  # first read hit the disk
            assert stats["bytes_read"] > 0
            cache.get(gen.key)  # second read: served from the decoded LRU
            assert cache.stats()["read_lru_hits"] >= 1
        else:
            assert stats["read_lru_hits"] == 0
            assert stats["read_lru_misses"] == 0
            assert stats["bytes_read"] == 0

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_get_many_matches_single_gets(self, backend, tmp_path):
        if backend == "memory":
            cache = InMemoryResultCache()
        else:
            cache = RunStore(tmp_path / "store").result_cache
        gens = [make_generation(i) for i in range(4)]
        cache.put_many(gens[:3])  # one key stays absent
        found = cache.get_many([gen.key for gen in gens])
        assert set(found) == {gen.key for gen in gens[:3]}
        for gen in gens[:3]:
            assert found[gen.key].cached
            assert found[gen.key].completion == gen.completion
        stats = cache.stats()
        assert stats["hits"] == 3
        assert stats["misses"] == 1

    def test_put_many_batches(self, tmp_path):
        cache = RunStore(tmp_path / "store").result_cache
        cache.put_many([make_generation(i) for i in range(3)])
        assert len(cache) == 3
        assert cache.stats()["puts"] == 3


class TestScorePersistence:
    def test_scores_survive_process_boundary(self, tmp_path):
        plan = small_plan()
        with RunStore(tmp_path / "store") as store:
            run(plan, store=store)

        fresh = RunStore(tmp_path / "store")
        outcome = run(small_plan(), store=fresh)
        assert outcome.stats.generated == 0
        assert outcome.stats.scores_computed == 0
        assert outcome.stats.score_hits == outcome.stats.total_units

    def test_unstable_scorer_stays_in_memory(self, tmp_path):
        store = RunStore(tmp_path / "store")
        score_cache = store.score_cache()
        key = ("a" * 64, "b" * 64, lambda x: x)
        score_cache.put(key, Score({"bleu": 1.0}, "a"))
        assert score_cache.get(key) is not None  # memory layer
        assert store.stats().scores == 0  # nothing durable
        assert score_cache.stats()["unpersistable"] == 1


class TestManifests:
    def test_run_records_manifest(self, tmp_path):
        plan = small_plan()
        with RunStore(tmp_path / "store") as store:
            outcome = run(plan, store=store)
            manifest = outcome.manifest
            assert manifest is not None
            assert manifest.plan_name == "persist-test"
            assert manifest.plan_fingerprint == plan_fingerprint(plan)
            assert manifest.unit_keys == tuple(u.key for u in plan.units)
            assert manifest.executor == "SerialExecutor()"
            assert manifest.stats == outcome.stats
            assert manifest.resumed_from is None
            assert store.manifests() == [manifest]
            assert store.latest_manifest(manifest.plan_fingerprint) == manifest
            assert store.latest_manifest("0" * 64) is None

    def test_repeat_run_links_to_predecessor(self, tmp_path):
        with RunStore(tmp_path / "store") as store:
            first = run(small_plan(), store=store).manifest
            second = run(small_plan(), store=store).manifest
        assert second.resumed_from == first.run_id
        assert second.stats.generated == 0
        assert second.stats.cache_hits > 0
        assert "resumed_from" in second.describe()

    def test_no_store_no_manifest(self):
        assert run(small_plan()).manifest is None

    def test_read_and_scoring_stats_round_trip(self, tmp_path):
        """score_workers + read-LRU traffic survive the manifest file."""
        from repro.persist.manifest import RunManifest
        from repro.runtime.runner import RunStats

        with RunStore(tmp_path / "store") as store:
            run(small_plan(), store=store)
        with RunStore(tmp_path / "store") as store:
            warm = run(small_plan(), store=store)
        # the warm pass read its generations back from segments
        assert warm.stats.read_lru_misses > 0
        assert warm.stats.bytes_read > 0
        assert warm.stats.score_workers == 0  # inline scoring
        reloaded = RunStore(tmp_path / "store").manifests()[-1]
        assert reloaded.stats == warm.stats

        # payload round trip preserves every new field verbatim
        manifest = RunManifest(
            run_id="run-test",
            plan_name="p",
            plan_fingerprint="f" * 64,
            unit_keys=("k",),
            executor="SerialExecutor()",
            scheduler="plan",
            cache="InMemoryResultCache()",
            stats=RunStats(
                total_units=1, generated=1, cache_hits=0, deduplicated=0,
                score_workers=3, read_lru_hits=7, read_lru_misses=2,
                bytes_read=4096,
            ),
            started_unix=0.0,
            wall_seconds=1.0,
        )
        back = RunManifest.from_payload(
            json.loads(json.dumps(manifest.to_payload()))
        )
        assert back == manifest
        assert back.stats.score_workers == 3
        assert back.stats.read_lru_hits == 7
        assert back.stats.bytes_read == 4096

    def test_old_manifest_without_read_stats_still_loads(self, tmp_path):
        """Pre-PR-6 manifests (no read/scoring stat keys) default to zero."""
        from repro.persist.manifest import RunManifest

        with RunStore(tmp_path / "store") as store:
            payload = run(small_plan(), store=store).manifest.to_payload()
        for legacy_missing in (
            "score_workers", "read_lru_hits", "read_lru_misses", "bytes_read",
        ):
            payload["stats"].pop(legacy_missing)
        old = RunManifest.from_payload(payload)
        assert old.stats.score_workers == 0
        assert old.stats.read_lru_hits == 0
        assert old.stats.bytes_read == 0

    def test_explicit_cache_still_records_manifest(self, tmp_path):
        with RunStore(tmp_path / "store") as store:
            outcome = run(small_plan(), cache=InMemoryResultCache(), store=store)
        assert outcome.manifest is not None
        assert outcome.manifest.cache.startswith("InMemoryResultCache")
        # the store cache was bypassed, so no generations were persisted
        assert store.stats().generations == 0


class TestResumableSweep:
    def test_table1_sweep_resumes_bit_identical(self, tmp_path):
        """Acceptance: warm second pass = zero generations, identical grid."""
        cold_serial = run_configuration(**SMALL)

        with RunStore(tmp_path / "store") as store:
            run_configuration(**SMALL, store=store)
        with RunStore(tmp_path / "store") as store:
            warm = run_configuration(**SMALL, store=store)
            manifest = store.latest_manifest()
        assert manifest.stats.generated == 0
        assert manifest.stats.cache_hits == manifest.stats.total_units - manifest.stats.deduplicated
        for row in cold_serial.row_keys:
            for model in cold_serial.models:
                assert cold_serial.cell(row, model) == warm.cell(row, model)

    def test_interrupted_sweep_regenerates_only_missing_units(self, tmp_path):
        """A partial store (interrupted run) is topped up, not redone."""
        with RunStore(tmp_path / "store") as store:
            run_configuration(
                models=["o3"], systems=["adios2"], epochs=2, store=store
            )
            partial = store.stats().generations
        with RunStore(tmp_path / "store") as store:
            run_configuration(**SMALL, store=store)
            manifest = store.latest_manifest()
        assert partial > 0
        assert manifest.stats.cache_hits == partial
        assert manifest.stats.generated == manifest.stats.total_units - partial - manifest.stats.deduplicated


class TestMmapReads:
    """Zero-copy mmap segment reads: parity, remap, fallback, lifetime."""

    def test_mmap_and_pread_paths_return_identical_records(self, tmp_path):
        gens = [make_generation(i) for i in range(12)]
        with RunStore(tmp_path / "store", max_segment_bytes=512) as writer:
            writer.put_generations(gens)
        mapped = RunStore(tmp_path / "store", use_mmap=True)
        plain = RunStore(tmp_path / "store", use_mmap=False)
        keys = [gen.key for gen in gens]
        assert mapped.get_generations(keys) == plain.get_generations(keys)
        for gen in gens:
            assert mapped.get_generation(gen.key) == plain.get_generation(gen.key)
        # the mmap store really did map (not silently pread)
        assert any(r._map is not None for r in mapped._readers.values())
        assert all(r._map is None for r in plain._readers.values())

    def test_remap_sees_records_appended_past_the_mapping(self, tmp_path):
        store = RunStore(tmp_path / "store", read_cache_entries=0)
        first = make_generation(0)
        store.put_generation(first)
        assert store.get_generation(first.key) == first  # maps the segment
        later = make_generation(1)
        store.put_generation(later)  # same segment, beyond the mapped size
        assert store.get_generation(later.key) == later  # forces a remap
        assert store.get_generation(first.key) == first

    def test_pread_fallback_when_mmap_fails(self, tmp_path, monkeypatch):
        gens = [make_generation(i) for i in range(6)]
        with RunStore(tmp_path / "store") as writer:
            writer.put_generations(gens)
        expected = {
            gen.key: RunStore(tmp_path / "store").get_generation(gen.key)
            for gen in gens
        }

        import repro.persist.store as store_mod

        class _BrokenMmap:
            ACCESS_READ = store_mod.mmap.ACCESS_READ

            @staticmethod
            def mmap(*args, **kwargs):
                raise OSError("mmap refused")

        monkeypatch.setattr(store_mod, "mmap", _BrokenMmap)
        store = RunStore(tmp_path / "store", read_cache_entries=0)
        for gen in gens:
            assert store.get_generation(gen.key) == expected[gen.key]
        # the failure is sticky per reader: mmap is not retried per record
        assert all(not r.use_mmap for r in store._readers.values())
        assert store.read_stats()["bytes_read"] > 0

    def test_live_view_survives_segment_unlink_and_close(self, tmp_path):
        """An exported record slice stays readable after compaction unlinks
        the segment, and closing the reader around it must not raise."""
        from repro.persist.store import _SegmentReader

        gen = make_generation(0)
        with RunStore(tmp_path / "store") as writer:
            writer.put_generation(gen)
        segment = list_segments(Path(tmp_path / "store" / "segments"))[0]
        length = segment.stat().st_size
        reader = _SegmentReader(segment)
        view = reader.read(0, length)
        assert isinstance(view, memoryview)
        snapshot = bytes(view)
        segment.unlink()  # what gc() does to replaced segments
        assert bytes(view) == snapshot  # the unlinked inode stays valid
        reader.close()  # BufferError from the live export is swallowed
        assert bytes(view) == snapshot

    def test_gc_compaction_invalidates_and_rereads_cleanly(self, tmp_path):
        store = RunStore(
            tmp_path / "store", max_segment_bytes=512, read_cache_entries=0
        )
        gens = [make_generation(i) for i in range(10)]
        store.put_generations(gens)
        for gen in gens:  # establish mappings over several segments
            assert store.get_generation(gen.key) == gen
        store.gc()
        for gen in gens:  # fresh mappings over the compacted segment
            assert store.get_generation(gen.key) == gen
        assert store.verify().clean


def _rotation_writer(store_path: str, batches: int, batch_size: int) -> None:
    """Append past the rotation threshold, compacting once midway (child)."""
    from repro.persist import RunStore

    store = RunStore(store_path, max_segment_bytes=16 << 10)
    for batch in range(batches):
        store.put_generations(
            [
                make_generation(10_000 + batch * batch_size + i)
                for i in range(batch_size)
            ]
        )
        if batch == batches // 2:
            store.gc()  # replaces every segment the reader has open
    store.close()


class TestConcurrentReadersDuringRotation:
    def test_open_handles_never_see_torn_or_stale_records(self, tmp_path):
        """A reader holding offset-indexed descriptors while another process
        appends past the rotation threshold (and compacts midway) always
        reads back exactly the records that were written."""
        store_path = str(tmp_path / "store")
        base = [make_generation(i) for i in range(20)]
        reader = RunStore(store_path, max_segment_bytes=16 << 10)
        reader.put_generations(base)
        for gen in base:  # warm the offset index and the persistent fds
            assert reader.get_generation(gen.key) == gen
        # the reader holds live segment mappings across what follows
        assert any(r._map is not None for r in reader._readers.values())

        batches, batch_size = 24, 16
        ctx = multiprocessing.get_context("spawn")
        writer = ctx.Process(
            target=_rotation_writer, args=(store_path, batches, batch_size)
        )
        writer.start()
        try:
            while writer.is_alive():
                for gen in base:
                    got = reader.get_generation(gen.key)
                    assert got == gen, "reader saw a torn or stale record"
        finally:
            writer.join(timeout=120)
        assert writer.exitcode == 0

        # everything the writer appended is readable through the same handle
        reader.refresh()
        for batch in range(batches):
            for i in range(batch_size):
                expected = make_generation(10_000 + batch * batch_size + i)
                assert reader.get_generation(expected.key) == expected
        assert reader.verify().clean


def _worker_sweep(store_path: str) -> None:
    """Run the small Table-1 sweep against a shared store (child process)."""
    from repro.core.experiments import run_configuration
    from repro.persist import RunStore

    with RunStore(store_path) as store:
        run_configuration(
            models=["o3", "llama-3.3-70b"],
            systems=["adios2", "wilkins"],
            epochs=2,
            store=store,
        )


class TestCrossProcessSharing:
    def test_two_processes_one_store(self, tmp_path):
        """Acceptance: concurrent workers share one store without corruption,
        and a subsequent pass performs zero generations."""
        store_path = str(tmp_path / "store")
        ctx = multiprocessing.get_context("spawn")
        workers = [
            ctx.Process(target=_worker_sweep, args=(store_path,)) for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

        with RunStore(store_path) as store:
            report = store.verify()
            assert report.clean, report.describe()
            assert report.generations > 0
            assert len(store.manifests()) == 2
            # second pass over the shared warm store: zero model calls
            warm = run_configuration(**SMALL, store=store)
            assert store.latest_manifest().stats.generated == 0
        cold = run_configuration(**SMALL)
        for row in cold.row_keys:
            for model in cold.models:
                assert cold.cell(row, model) == warm.cell(row, model)


def run_cli(args: list[str], cwd: Path | None = None) -> subprocess.CompletedProcess:
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(src)
    return subprocess.run(
        [sys.executable, "-m", "repro.persist", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


class TestCLI:
    @pytest.fixture()
    def populated_store(self, tmp_path) -> str:
        with RunStore(tmp_path / "store") as store:
            run(small_plan(), store=store)
        return str(tmp_path / "store")

    def test_stats(self, populated_store):
        proc = run_cli(["stats", populated_store])
        assert proc.returncode == 0
        assert "generation(s)" in proc.stdout

    def test_verify_clean(self, populated_store):
        proc = run_cli(["verify", populated_store])
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_verify_unclean_exits_nonzero(self, populated_store):
        seg = list_segments(Path(populated_store) / "segments")[0]
        raw = seg.read_bytes().splitlines(keepends=True)
        raw[0] = b"deadbeef " + raw[0].split(b" ", 1)[1]
        seg.write_bytes(b"".join(raw))
        proc = run_cli(["verify", populated_store])
        assert proc.returncode == 1
        assert "checksum mismatch" in proc.stdout

    def test_gc_then_verify(self, populated_store):
        proc = run_cli(["gc", populated_store])
        assert proc.returncode == 0
        assert "gc:" in proc.stdout
        assert run_cli(["verify", populated_store]).returncode == 0

    def test_ls_runs(self, populated_store):
        proc = run_cli(["ls-runs", populated_store])
        assert proc.returncode == 0
        assert "plan='persist-test'" in proc.stdout
        assert "generated=" in proc.stdout

    def test_ls_runs_empty_store(self, tmp_path):
        RunStore(tmp_path / "store").close()
        proc = run_cli(["ls-runs", str(tmp_path / "store")])
        assert proc.returncode == 0
        assert "no runs recorded" in proc.stdout

    def test_missing_store_is_a_clean_error(self, tmp_path):
        proc = run_cli(["stats", str(tmp_path / "nowhere")])
        assert proc.returncode == 2
        assert "error:" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_unknown_command_rejected(self, tmp_path):
        proc = run_cli(["defrag", str(tmp_path)])
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
