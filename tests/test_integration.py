"""End-to-end integration: eval pipeline, shapes, substrate interop.

These tests run small slices of the full reproduction (1-2 epochs, one or
two cells) and assert the paper's qualitative claims emerge from the
measured pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiments import (
    run_annotation,
    run_configuration,
    run_fewshot,
    run_translation,
)
from repro.data import TABLE1, TABLE2


class TestTableShapes:
    def test_config_system_ordering(self):
        grid = run_configuration(epochs=2)
        by_row = grid.overall_by_row()
        assert by_row["adios2"].bleu.mean > by_row["henson"].bleu.mean
        assert by_row["adios2"].bleu.mean > by_row["wilkins"].bleu.mean

    def test_config_cells_near_paper(self):
        grid = run_configuration(epochs=2)
        for (system, model), paper in TABLE1.items():
            measured = grid.cell(system, model).bleu.mean
            assert abs(measured - paper.bleu) < 10.0, (system, model)

    def test_annotation_llama_collapse(self):
        grid = run_annotation(models=["llama-3.3-70b"], systems=["pycompss"], epochs=2)
        assert grid.cell("pycompss", "llama-3.3-70b").bleu.mean < 20.0

    def test_annotation_cells_near_paper(self):
        grid = run_annotation(epochs=2)
        for (system, model), paper in TABLE2.items():
            measured = grid.cell(system, model).bleu.mean
            assert abs(measured - paper.bleu) < 10.0, (system, model)

    def test_translation_direction_asymmetry(self):
        grid = run_translation(epochs=2, directions=[
            ("henson", "adios2"), ("adios2", "henson"),
        ])
        by_row = grid.overall_by_row()
        assert (
            by_row[("henson", "adios2")].bleu.mean
            > by_row[("adios2", "henson")].bleu.mean
        )

    def test_fewshot_uplift_everywhere(self):
        comparison = run_fewshot(epochs=2)
        for model in comparison.models:
            assert comparison.gain(model) > 30.0


class TestHallucinationAudit:
    def test_zero_shot_configs_hallucinate_more_than_fewshot(self):
        from repro.core.experiments.configuration import configuration_task
        from repro.core.task import evaluate
        from repro.workflows import get_system

        system = get_system("wilkins")

        def hallucination_count(fewshot: bool) -> int:
            task = configuration_task("wilkins", fewshot=fewshot)
            result = evaluate(task, "sim/o3", epochs=2)
            total = 0
            for score in result.samples[0].scores:
                report = system.validate_config(score.answer)
                total += len(report.hallucinations())
            return total

        assert hallucination_count(False) > hallucination_count(True)


class TestSubstrateInterop:
    def test_reference_wilkins_yaml_drives_real_execution(self):
        """The evaluation ground truth is executable on the substrate."""
        from repro.core.assets import reference_config
        from repro.workflows.wilkins import WilkinsRuntime, parse_wilkins_yaml

        config = parse_wilkins_yaml(reference_config("wilkins"))

        def producer(comm, ctx):
            for step in range(2):
                if comm.rank == 0:
                    ctx.write("grid", np.full(8, step, dtype=float), step=step)
                    ctx.write("particles", np.arange(step + 1.0), step=step)

        def consumer1(comm, ctx):
            return [float(d.sum()) for _s, d in ctx.steps("grid")]

        def consumer2(comm, ctx):
            return [len(d) for _s, d in ctx.steps("particles")]

        results = WilkinsRuntime(
            config,
            {"producer": producer, "consumer1": consumer1, "consumer2": consumer2},
        ).run()
        assert results["consumer1"] == [0.0, 8.0]
        assert results["consumer2"] == [1, 2]

    def test_henson_and_adios2_runs_agree(self):
        """The same producer logic yields identical sums through either
        substrate — the translation experiment's semantic ground truth."""
        import threading

        from repro.store import SimFilesystem
        from repro.workflows.adios2 import Adios, Mode, StepStatus
        from repro.workflows.henson import HensonRuntime, Puppet
        from repro.workflows.henson import api as henson

        def make_data(step: int) -> np.ndarray:
            rng = np.random.default_rng(step)
            return rng.random(16)

        # Henson path
        def producer():
            for t in range(3):
                henson.henson_save_array("array", make_data(t))
                henson.henson_save_int("t", t)
                henson.henson_yield()

        def consumer():
            sums = []
            while henson.henson_active():
                sums.append(float(henson.henson_load_array("array").sum()))
                henson.henson_yield()
            return sums

        henson_sums = HensonRuntime(
            [Puppet("producer", producer, driver=True), Puppet("consumer", consumer)]
        ).run()["consumer"]

        # ADIOS2 path
        fs = SimFilesystem()
        ad = Adios(fs=fs)
        wio = ad.declare_io("W"); wio.set_engine("SST")
        rio = ad.declare_io("R"); rio.set_engine("SST")
        adios_sums: list[float] = []

        def writer():
            var = wio.define_variable("array", dtype="float64")
            engine = wio.open("out.bp", Mode.WRITE)
            for t in range(3):
                engine.begin_step()
                engine.put(var, make_data(t))
                engine.end_step()
            engine.close()

        def reader():
            engine = rio.open("out.bp", Mode.READ)
            while engine.begin_step() is StepStatus.OK:
                adios_sums.append(float(np.sum(engine.get("array"))))
                engine.end_step()
            engine.close()

        tr = threading.Thread(target=reader)
        tr.start()
        writer()
        tr.join(10.0)

        assert adios_sums == pytest.approx(henson_sums)
