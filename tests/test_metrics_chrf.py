"""ChrF: identity, bounds, whitespace handling, beta semantics."""

from __future__ import annotations

import pytest

from repro.errors import MetricError
from repro.metrics import chrf, corpus_chrf

REF = "tasks:\n- func: producer\n  nprocs: 3"


class TestSentenceChrf:
    def test_identity_is_100(self):
        assert chrf(REF, REF) == pytest.approx(100.0)

    def test_disjoint_is_0(self):
        assert chrf("abcdef", "uvwxyz") == pytest.approx(0.0, abs=0.5)

    def test_range(self):
        assert 0.0 <= chrf("tasks:\n- func: writer", REF) <= 100.0

    def test_whitespace_removed_by_default(self):
        spaced = REF.replace("\n", "\n    ")
        assert chrf(spaced, REF) == pytest.approx(100.0)

    def test_whitespace_preserved_when_disabled(self):
        spaced = REF.replace(" ", "  ")
        assert chrf(spaced, REF, remove_whitespace=False) < 100.0

    def test_empty_hypothesis(self):
        assert chrf("", REF) == pytest.approx(0.0)

    def test_more_corruption_scores_lower(self):
        mild = REF.replace("producer", "producr")
        heavy = "completely unrelated words here"
        assert chrf(heavy, REF) < chrf(mild, REF)


class TestBeta:
    def test_beta_weighs_recall(self):
        # hypothesis missing half the reference: recall low, precision high.
        # higher beta (recall-weighted) must score it lower.
        hyp = REF[: len(REF) // 2]
        assert chrf(hyp, REF, beta=3.0) < chrf(hyp, REF, beta=0.5)


class TestCharOrder:
    def test_lower_order_more_forgiving(self):
        hyp = REF.replace("producer", "producer2")
        assert chrf(hyp, REF, char_order=2) >= chrf(hyp, REF, char_order=6)


class TestCorpusChrf:
    def test_empty_corpus_raises(self):
        with pytest.raises(MetricError):
            corpus_chrf([], [])

    def test_mismatch_raises(self):
        with pytest.raises(MetricError):
            corpus_chrf(["a"], ["a", "b"])

    def test_multi_reference(self):
        score = corpus_chrf([REF], [["unrelated", REF]])
        assert score.score == pytest.approx(100.0)

    def test_per_order_f_populated(self):
        result = corpus_chrf([REF], [REF])
        assert len(result.per_order_f) == 6
        assert all(f == pytest.approx(1.0) for f in result.per_order_f)

    def test_format(self):
        assert "chrF2" in corpus_chrf([REF], [REF]).format()
