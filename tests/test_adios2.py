"""ADIOS2 substrate: API, engines, XML config, validator."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ConfigError, WorkflowError
from repro.workflows.adios2 import (
    Adios,
    Mode,
    StepStatus,
    parse_xml_config,
    validate_config,
    validate_task_code,
)
from repro.workflows.adios2.xmlconfig import AdiosConfig, IOConfig, render_xml_config


class TestApi:
    def test_declare_io_unique(self, fs):
        ad = Adios(fs=fs)
        ad.declare_io("X")
        with pytest.raises(WorkflowError, match="already declared"):
            ad.declare_io("X")

    def test_at_io(self, fs):
        ad = Adios(fs=fs)
        io = ad.declare_io("X")
        assert ad.at_io("X") is io
        with pytest.raises(WorkflowError):
            ad.at_io("missing")

    def test_define_variable_dtype_inference(self, fs):
        io = Adios(fs=fs).declare_io("X")
        var = io.define_variable("x", data=np.zeros(3, dtype=np.float32))
        assert var.dtype == "float32"

    def test_duplicate_variable_rejected(self, fs):
        io = Adios(fs=fs).declare_io("X")
        io.define_variable("x")
        with pytest.raises(WorkflowError):
            io.define_variable("x")

    def test_unknown_engine_rejected(self, fs):
        io = Adios(fs=fs).declare_io("X")
        with pytest.raises(WorkflowError, match="unknown ADIOS2 engine"):
            io.set_engine("HDF5")  # parser knows it; runtime does not ship it


class TestBPFileEngine:
    def test_write_then_read_after_close(self, fs):
        ad = Adios(fs=fs)
        wio = ad.declare_io("W")
        var = wio.define_variable("x", dtype="float64")
        engine = wio.open("f.bp", Mode.WRITE)
        for step in range(3):
            engine.begin_step()
            engine.put(var, np.full(4, float(step)))
            engine.end_step()
        engine.close()

        rio = ad.declare_io("R")
        reader = rio.open("f.bp", Mode.READ)
        seen = []
        while reader.begin_step() is StepStatus.OK:
            seen.append(float(reader.get("x")[0]))
            reader.end_step()
        reader.close()
        assert seen == [0.0, 1.0, 2.0]

    def test_put_outside_step_rejected(self, fs):
        wio = Adios(fs=fs).declare_io("W")
        var = wio.define_variable("x")
        engine = wio.open("f.bp", Mode.WRITE)
        with pytest.raises(WorkflowError, match="outside"):
            engine.put(var, np.zeros(1))

    def test_get_on_writer_rejected(self, fs):
        wio = Adios(fs=fs).declare_io("W")
        engine = wio.open("f.bp", Mode.WRITE)
        engine.begin_step()
        with pytest.raises(WorkflowError, match="write-mode"):
            engine.get("x")

    def test_nested_begin_step_rejected(self, fs):
        wio = Adios(fs=fs).declare_io("W")
        engine = wio.open("f.bp", Mode.WRITE)
        engine.begin_step()
        with pytest.raises(WorkflowError, match="inside an open step"):
            engine.begin_step()

    def test_close_is_idempotent_and_finalizes(self, fs):
        wio = Adios(fs=fs).declare_io("W")
        engine = wio.open("f.bp", Mode.WRITE)
        engine.close()
        engine.close()
        assert fs.open("f.bp").finalized

    def test_context_manager(self, fs):
        wio = Adios(fs=fs).declare_io("W")
        var = wio.define_variable("x")
        with wio.open("f.bp", Mode.WRITE) as engine:
            engine.begin_step()
            engine.put(var, np.zeros(1))
            engine.end_step()
        assert fs.open("f.bp").num_steps == 1

    def test_append_mode(self, fs):
        wio = Adios(fs=fs).declare_io("W")
        var = wio.define_variable("x")
        engine = wio.open("f.bp", Mode.WRITE)
        engine.begin_step(); engine.put(var, 1); engine.end_step()
        # append before finalize from another engine on the same file
        aio = Adios(fs=fs).declare_io("A")
        var2 = aio.define_variable("x")
        appender = aio.open("f.bp", Mode.APPEND)
        appender.begin_step(); appender.put(var2, 2); appender.end_step()
        appender.close()
        assert fs.open("f.bp").num_steps == 2


class TestSSTEngine:
    def test_concurrent_streaming(self, fs):
        ad = Adios(fs=fs)
        wio = ad.declare_io("W"); wio.set_engine("SST")
        rio = ad.declare_io("R"); rio.set_engine("SST")
        seen: list[float] = []

        def writer():
            var = wio.define_variable("x")
            engine = wio.open("s.bp", Mode.WRITE)
            for step in range(5):
                engine.begin_step()
                engine.put(var, float(step))
                engine.end_step()
            engine.close()

        def reader():
            engine = rio.open("s.bp", Mode.READ)
            while engine.begin_step() is StepStatus.OK:
                seen.append(engine.get("x"))
                engine.end_step()
            engine.close()

        tr = threading.Thread(target=reader)
        tr.start()
        writer()
        tr.join(10.0)
        assert seen == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_sst_reader_only_read_mode(self, fs):
        wio = Adios(fs=fs).declare_io("W")
        wio.set_engine("SST")
        with pytest.raises(WorkflowError):
            from repro.workflows.adios2.engines import SSTWriter

            SSTWriter(wio, "s.bp", Mode.READ)


class TestXmlConfig:
    GOOD = """<?xml version="1.0"?>
<adios-config>
    <io name="SimulationOutput">
        <engine type="SST">
            <parameter key="QueueLimit" value="1"/>
        </engine>
        <variable name="grid"/>
    </io>
</adios-config>"""

    def test_parse_good(self):
        config = parse_xml_config(self.GOOD)
        io = config.io("SimulationOutput")
        assert io.engine_type == "SST"
        assert io.parameters == {"QueueLimit": "1"}
        assert io.variables == ["grid"]

    def test_malformed_xml(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_xml_config("<adios-config><io></adios-config>")

    def test_wrong_root(self):
        with pytest.raises(ConfigError, match="root element"):
            parse_xml_config("<config/>")

    def test_unnamed_io(self):
        with pytest.raises(ConfigError, match="missing required 'name'"):
            parse_xml_config("<adios-config><io/></adios-config>")

    def test_unknown_engine_type(self):
        bad = self.GOOD.replace('type="SST"', 'type="Teleport"')
        with pytest.raises(ConfigError, match="unknown engine type"):
            parse_xml_config(bad)

    def test_duplicate_io(self):
        dup = self.GOOD.replace(
            "</adios-config>",
            '<io name="SimulationOutput"/></adios-config>',
        )
        with pytest.raises(ConfigError, match="duplicate"):
            parse_xml_config(dup)

    def test_render_roundtrip(self):
        config = AdiosConfig(
            ios={"X": IOConfig(name="X", engine_type="BP4",
                               parameters={"k": "v"}, variables=["a"])}
        )
        reparsed = parse_xml_config(render_xml_config(config))
        assert reparsed.io("X").engine_type == "BP4"
        assert reparsed.io("X").parameters == {"k": "v"}

    def test_adios_applies_config(self, fs):
        ad = Adios(fs=fs, config_text=self.GOOD)
        io = ad.declare_io("SimulationOutput")
        assert io.engine_type == "SST"
        assert io.parameters["QueueLimit"] == "1"


class TestValidators:
    def test_good_config_ok(self):
        assert validate_config(TestXmlConfig.GOOD).ok

    def test_unknown_element_flagged(self):
        bad = TestXmlConfig.GOOD.replace("<variable", "<dataset").replace(
            "</io>", "</io>"
        )
        report = validate_config(bad)
        assert any(d.symbol == "dataset" for d in report.hallucinations())

    def test_reference_task_code_ok(self):
        from repro.core.assets import annotated_producer

        report = validate_task_code(annotated_producer("adios2"))
        assert report.ok, report.render()

    def test_hallucinated_call_flagged(self):
        from repro.core.assets import annotated_producer

        bad = annotated_producer("adios2").replace("adios2_put", "adios2_write")
        report = validate_task_code(bad)
        symbols = {d.symbol for d in report.hallucinations()}
        assert "adios2_write" in symbols

    def test_missing_required_call_flagged(self):
        from repro.core.assets import annotated_producer

        bad = annotated_producer("adios2").replace("adios2_finalize(adios);", "")
        report = validate_task_code(bad)
        assert any(
            d.code == "missing-api" and d.symbol == "adios2_finalize"
            for d in report.diagnostics
        )

    def test_unbalanced_steps_warn(self):
        from repro.core.assets import annotated_producer

        bad = annotated_producer("adios2").replace("adios2_end_step(engine);", "")
        report = validate_task_code(bad)
        assert any(d.code == "structure" for d in report.warnings()) or any(
            d.code == "missing-api" for d in report.diagnostics
        )
