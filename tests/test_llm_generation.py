"""Corruption engine, calibration, and the simulated models."""

from __future__ import annotations

import pytest

from repro.core.assets import annotated_producer, reference_config
from repro.errors import CalibrationError
from repro.llm import GenerateConfig, get_model
from repro.llm.calibration import (
    QualityCurve,
    calibrate,
    local_recalibrate,
    quality_curve,
)
from repro.llm.corruption import apply_ops, build_ops, shuffle_within_bands
from repro.llm.knowledge import SystemKnowledge
from repro.llm.profiles import ALL_PROFILES
from repro.metrics import bleu
from repro.utils.rng import rng_for
from repro.utils.text import strip_markdown_chatter

REF = reference_config("wilkins")


def wilkins_knowledge() -> SystemKnowledge:
    profile = ALL_PROFILES["o3"]()
    return profile.knowledge_for("configuration", "wilkins")


class TestCorruptionOps:
    def test_zero_ops_is_identity(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        assert apply_ops(REF, ops, 0) == REF

    def test_full_ops_near_worst_case(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        corrupted = apply_ops(REF, ops, len(ops))
        assert bleu(corrupted, REF) < 25.0

    def test_curve_starts_at_100(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        curve = quality_curve(REF, ops)
        assert curve[0] == pytest.approx(100.0)

    def test_curve_overall_decreasing(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        curve = quality_curve(REF, ops)
        # not strictly monotone, but start > middle > end
        assert curve[0] > curve[len(curve) // 2] > curve[-1]

    def test_ops_deterministic_for_seed(self):
        a = build_ops(REF, wilkins_knowledge(), seed_labels=("x",))
        b = build_ops(REF, wilkins_knowledge(), seed_labels=("x",))
        assert [op.describe for op in a] == [op.describe for op in b]

    def test_bands_sorted(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        bands = [op.band for op in ops]
        assert bands == sorted(bands)

    def test_shuffle_preserves_bands_and_membership(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        shuffled = shuffle_within_bands(ops, rng_for("shuffle"))
        assert [op.band for op in shuffled] == [op.band for op in ops]
        assert sorted(op.describe for op in shuffled) == sorted(
            op.describe for op in ops
        )

    def test_shuffle_keeps_heavy_bands_fixed(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        shuffled = shuffle_within_bands(ops, rng_for("shuffle2"))
        heavy = [op.describe for op in ops if op.band >= 4]
        heavy_shuffled = [op.describe for op in shuffled if op.band >= 4]
        assert heavy == heavy_shuffled

    def test_empty_knowledge_still_has_mild_ops(self):
        ops = build_ops(REF, SystemKnowledge(), seed_labels=("t",))
        assert len(ops) >= 3
        assert all(op.band == 1 for op in ops)


class TestQualityCurve:
    """The incremental curve must match the from-scratch construction."""

    def _ops(self):
        return build_ops(REF, wilkins_knowledge(), seed_labels=("t",))

    def test_texts_match_apply_ops_at_every_depth(self):
        ops = self._ops()
        curve = QualityCurve(REF, ops)
        for k in range(len(ops) + 1):
            assert curve.text(k) == apply_ops(REF, ops, k)

    def test_scores_match_naive_curve_bitwise(self):
        ops = self._ops()
        naive = [bleu(apply_ops(REF, ops, k), REF) for k in range(len(ops) + 1)]
        assert QualityCurve(REF, ops).scores() == naive

    def test_depth_clamping_matches_apply_ops(self):
        ops = self._ops()
        curve = QualityCurve(REF, ops)
        assert curve.text(-3) == REF
        assert curve.text(len(ops) + 10) == apply_ops(REF, ops, len(ops))

    def test_scores_memoized(self):
        ops = self._ops()
        curve = QualityCurve(REF, ops)
        curve.score(5)
        curve.score(5)
        curve.score(3)
        assert curve.scores_computed == 2

    def test_best_breaks_ties_toward_lowest_depth(self):
        ops = self._ops()
        curve = QualityCurve(REF, ops)
        k, err = curve.best(curve.score(4), lo=0, hi=len(ops))
        assert curve.score(k) == curve.score(4)
        assert k <= 4
        assert err == 0.0

    def test_local_recalibrate_matches_naive_window_search(self):
        ops = self._ops()
        target = 70.0
        center = calibrate(REF, ops, target).k
        for trial in range(6):
            epoch_ops = shuffle_within_bands(ops, rng_for("recal", trial))
            # the pre-engine implementation: score every window depth from
            # scratch, with the historical full-scan fallback
            lo, hi = max(0, center - 8), min(len(epoch_ops), center + 8)
            best_k, best_err = center, float("inf")
            for k in range(lo, hi + 1):
                err = abs(bleu(apply_ops(REF, epoch_ops, k), REF) - target)
                if err < best_err:
                    best_k, best_err = k, err
            if best_err > 6.0:
                for k, score in enumerate(quality_curve(REF, epoch_ops)):
                    err = abs(score - target)
                    if err < best_err:
                        best_k, best_err = k, err
            got = local_recalibrate(REF, epoch_ops, target, center=center)
            assert got == best_k, f"trial {trial}"

    def test_compact_keeps_depths_and_rebuilds_the_rest(self):
        ops = self._ops()
        curve = QualityCurve(REF, ops)
        expected = {k: curve.text(k) for k in (0, 7, len(ops))}
        curve.compact(keep=(7,))
        assert curve._texts == {0: REF, 7: expected[7]}
        assert len(curve._states) == 1
        # non-kept depths rebuild on demand, identically
        assert curve.text(len(ops)) == expected[len(ops)]
        assert curve.text(7) == expected[7]

    def test_local_recalibrate_reuses_supplied_curve(self):
        ops = self._ops()
        curve = QualityCurve(REF, ops)
        k = local_recalibrate(REF, ops, 70.0, center=10, curve=curve)
        computed = curve.scores_computed
        assert computed > 0
        # a second search over the same window re-scores nothing
        assert local_recalibrate(REF, ops, 70.0, center=10, curve=curve) == k
        assert curve.scores_computed == computed


class TestCalibration:
    def test_hits_targets_across_range(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        for target in (95.0, 70.0, 40.0, 20.0):
            result = calibrate(REF, ops, target)
            assert abs(result.achieved_bleu - target) <= 8.0

    def test_target_100_is_k0(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        assert calibrate(REF, ops, 100.0).k == 0

    def test_out_of_range_target(self):
        ops = build_ops(REF, wilkins_knowledge(), seed_labels=("t",))
        with pytest.raises(CalibrationError):
            calibrate(REF, ops, 150.0)

    def test_unreachable_target_raises(self):
        # only mild ops: cannot reach BLEU 10
        ops = build_ops(REF, SystemKnowledge(), seed_labels=("t",))
        with pytest.raises(CalibrationError, match="cannot reach"):
            calibrate(REF, ops, 10.0)


CFG_PROMPT = (
    "I would like to have a 3-node workflow consisting of one producer and two "
    "consumer tasks, where producer generates grid and particles datasets, "
    "consumer1 reads grid and consumer2 reads particles datasets. Producer "
    "requires 3 processes, and each consumer runs on a single process. Please "
    "provide the workflow configuration file for the Wilkins workflow system."
)


class TestSimulatedModels:
    def test_deterministic_given_seed(self):
        model = get_model("sim/o3")
        a = model.generate(CFG_PROMPT, GenerateConfig(seed=3)).completion
        b = model.generate(CFG_PROMPT, GenerateConfig(seed=3)).completion
        assert a == b

    def test_seeds_vary_output_for_jittery_models(self):
        model = get_model("sim/gemini-2.5-pro")
        outputs = {
            model.generate(CFG_PROMPT, GenerateConfig(seed=s)).completion
            for s in range(4)
        }
        assert len(outputs) > 1

    def test_claude_identical_across_seeds(self):
        model = get_model("sim/claude-sonnet-4")
        payloads = {
            strip_markdown_chatter(
                model.generate(CFG_PROMPT, GenerateConfig(seed=s)).completion
            )
            for s in range(4)
        }
        assert len(payloads) == 1

    def test_temperature_zero_deterministic_for_all(self):
        for name in ("sim/gemini-2.5-pro", "sim/llama-3.3-70b"):
            model = get_model(name)
            payloads = {
                strip_markdown_chatter(
                    model.generate(
                        CFG_PROMPT,
                        GenerateConfig(temperature=0.0, top_p=0.95, seed=s),
                    ).completion
                )
                for s in range(3)
            }
            assert len(payloads) == 1, name

    def test_o3_ignores_sampling_params(self):
        model = get_model("sim/o3")
        out = model.generate(CFG_PROMPT, GenerateConfig(temperature=0.0, seed=1))
        assert out.params_applied is False
        # o3 still varies across seeds despite temperature=0 in the request
        other = model.generate(CFG_PROMPT, GenerateConfig(temperature=0.0, seed=2))
        assert isinstance(other.completion, str)

    def test_usage_accounting(self):
        out = get_model("sim/o3").generate(CFG_PROMPT, GenerateConfig(seed=0))
        assert out.usage.input_tokens > 20
        assert out.usage.output_tokens > 20
        assert out.usage.total_tokens == (
            out.usage.input_tokens + out.usage.output_tokens
        )

    def test_completion_is_fenced_with_chatter(self):
        out = get_model("sim/gemini-2.5-pro").generate(CFG_PROMPT, GenerateConfig(seed=0))
        assert "```" in out.completion
        payload = strip_markdown_chatter(out.completion)
        assert payload and "```" not in payload

    def test_metadata_carries_intent(self):
        out = get_model("sim/o3").generate(CFG_PROMPT, GenerateConfig(seed=0))
        intent = out.metadata["intent"]
        assert intent.experiment == "configuration"
        assert intent.system == "wilkins"

    def test_annotation_generation_scores_in_band(self):
        prompt = (
            "You are assisting in the development of a simple producer-consumer "
            "workflow using the PyCOMPSs system. The producer task code is "
            "provided below. Annotate this task code in order to use it with "
            "the PyCOMPSs system.\n\n<code>"
        )
        model = get_model("sim/gemini-2.5-pro")
        ref = annotated_producer("pycompss")
        scores = [
            bleu(
                strip_markdown_chatter(
                    model.generate(prompt, GenerateConfig(seed=s)).completion
                ),
                ref,
            )
            for s in range(3)
        ]
        # paper target 89.3 for this cell
        assert 80.0 <= sum(scores) / len(scores) <= 98.0

    def test_empty_prompt_rejected(self):
        from repro.errors import GenerationError

        with pytest.raises(GenerationError):
            get_model("sim/o3").generate("   ", GenerateConfig())


class TestProfiles:
    def test_all_profiles_have_full_target_coverage(self):
        from repro.data import PROMPT_VARIANTS

        cells = (
            [("configuration", s) for s in ("adios2", "henson", "wilkins")]
            + [("annotation", s) for s in ("adios2", "henson", "pycompss", "parsl")]
            + [
                ("translation", ("henson", "adios2")),
                ("translation", ("adios2", "henson")),
                ("translation", ("parsl", "pycompss")),
                ("translation", ("pycompss", "parsl")),
            ]
        )
        for name, factory in ALL_PROFILES.items():
            profile = factory()
            for experiment, system_key in cells:
                for variant in PROMPT_VARIANTS:
                    target = profile.target_for(experiment, system_key, variant)
                    assert 0.0 <= target <= 100.0, (name, experiment, system_key)

    def test_fewshot_targets_above_zero_shot(self):
        for factory in ALL_PROFILES.values():
            profile = factory()
            for system in ("adios2", "henson", "wilkins"):
                zero = profile.target_for("configuration", system, "original")
                few = profile.target_for("configuration", system, "original", True)
                assert few > zero

    def test_claude_has_zero_jitter(self):
        assert ALL_PROFILES["claude-sonnet-4"]().epoch_jitter == 0.0

    def test_o3_ignores_params_flag(self):
        assert ALL_PROFILES["o3"]().ignore_sampling_params is True

    def test_knowledge_fallback_is_empty(self):
        profile = ALL_PROFILES["o3"]()
        knowledge = profile.knowledge_for("annotation", "nonexistent-system")
        assert knowledge.confusions == {}
