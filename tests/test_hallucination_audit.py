"""Hallucination-rate aggregation over evaluation runs."""

from __future__ import annotations

import pytest

from repro.core.experiments.configuration import configuration_task
from repro.core.task import evaluate
from repro.errors import HarnessError
from repro.reporting.hallucinations import audit_eval


class TestAuditEval:
    def test_zero_shot_has_hallucinations(self):
        task = configuration_task("wilkins")
        result = evaluate(task, "sim/o3", epochs=2)
        report = audit_eval(result, "wilkins")
        assert report.trials == 2
        assert report.total_hallucinations > 0
        assert report.rate_per_trial > 0
        assert 0.0 <= report.clean_fraction <= 1.0

    def test_fewshot_is_clean(self):
        task = configuration_task("wilkins", fewshot=True)
        result = evaluate(task, "sim/o3", epochs=2)
        report = audit_eval(result, "wilkins")
        assert report.clean_fraction == 1.0
        assert report.total_hallucinations == 0

    def test_fewshot_beats_zeroshot(self):
        zero = audit_eval(
            evaluate(configuration_task("wilkins"), "sim/llama-3.3-70b", epochs=2),
            "wilkins",
        )
        few = audit_eval(
            evaluate(
                configuration_task("wilkins", fewshot=True),
                "sim/llama-3.3-70b",
                epochs=2,
            ),
            "wilkins",
        )
        assert few.rate_per_trial < zero.rate_per_trial

    def test_most_common_and_render(self):
        task = configuration_task("wilkins")
        result = evaluate(task, "sim/o3", epochs=2)
        report = audit_eval(result, "wilkins")
        text = report.render()
        assert "Wilkins config" in text
        assert isinstance(report.most_common(3), list)

    def test_invalid_artifact_kind(self):
        task = configuration_task("wilkins")
        result = evaluate(task, "sim/o3", epochs=1)
        with pytest.raises(HarnessError, match="unknown artifact kind"):
            audit_eval(result, "wilkins", artifact_kind="binary")

    def test_missing_validator_rejected(self):
        task = configuration_task("wilkins")
        result = evaluate(task, "sim/o3", epochs=1)
        with pytest.raises(HarnessError, match="no task-code validator"):
            audit_eval(result, "wilkins", artifact_kind="task-code")
