"""Compiled metrics engine: equivalence with the reference scorers.

The compiled scorers must be drop-in numerically identical to
``bleu``/``chrf`` (property-tested to 1e-9 across random hypotheses and
every smoothing method), the reference statistics must be computed once
and shared, and zero-length hypothesis/reference edge cases must score
without fabricating positive similarity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import bleu, chrf
from repro.metrics.bleu import corpus_bleu
from repro.metrics.compiled import (
    CompiledReference,
    bleu_compiled,
    chrf_compiled,
    compile_reference,
)
from repro.metrics.tokenizers import (
    _tokenize_13a_reference,
    tokenize_13a,
    tokenize_13a_cached,
)

text = st.text(
    alphabet=st.characters(codec="ascii", exclude_categories=("Cc", "Cs")),
    min_size=0,
    max_size=200,
)
multiline_text = st.lists(text, min_size=1, max_size=8).map("\n".join)
word_text = st.lists(
    st.text(alphabet="abcdefgh.,-0123456789", min_size=1, max_size=6),
    min_size=1,
    max_size=40,
).map(" ".join)

SMOOTHING = ["exp", "floor", "add-k", "none"]


class TestBleuCompiledEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(hyp=text, ref=word_text, smooth=st.sampled_from(SMOOTHING))
    def test_matches_reference_bleu(self, hyp, ref, smooth):
        expected = bleu(hyp, ref, smooth_method=smooth)
        got = bleu_compiled(hyp, ref, smooth_method=smooth)
        assert got == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(hyp=multiline_text, ref=multiline_text)
    def test_matches_on_multiline_artifacts(self, hyp, ref):
        assert bleu_compiled(hyp, ref) == pytest.approx(bleu(hyp, ref), abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        hyp=word_text,
        ref=word_text,
        smooth=st.sampled_from(["floor", "add-k"]),
        value=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    )
    def test_matches_with_explicit_smooth_values(self, hyp, ref, smooth, value):
        expected = bleu(hyp, ref, smooth_method=smooth, smooth_value=value)
        got = bleu_compiled(hyp, ref, smooth_method=smooth, smooth_value=value)
        assert got == pytest.approx(expected, abs=1e-9)

    def test_unknown_smoothing_rejected(self):
        from repro.errors import MetricError

        with pytest.raises(MetricError, match="smoothing"):
            bleu_compiled("a", "a", smooth_method="nope")

    def test_accepts_precompiled_object(self):
        ref = compile_reference("engine.put(var, data)")
        assert bleu_compiled("engine.put(var, data)", ref) == pytest.approx(100.0)


class TestChrfCompiledEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(hyp=text, ref=word_text)
    def test_matches_reference_chrf(self, hyp, ref):
        assert chrf_compiled(hyp, ref) == pytest.approx(chrf(hyp, ref), abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(hyp=multiline_text, ref=multiline_text, order=st.integers(1, 8))
    def test_matches_across_char_orders(self, hyp, ref, order):
        expected = chrf(hyp, ref, char_order=order)
        got = chrf_compiled(hyp, ref, char_order=order)
        assert got == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(hyp=word_text, ref=word_text)
    def test_matches_with_whitespace_kept(self, hyp, ref):
        expected = chrf(hyp, ref, remove_whitespace=False)
        got = chrf_compiled(hyp, ref, remove_whitespace=False)
        assert got == pytest.approx(expected, abs=1e-9)


class TestCompiledReference:
    def test_lru_shares_one_object_per_text(self):
        assert compile_reference("shared text") is compile_reference("shared text")

    def test_statistics_memoized(self):
        ref = CompiledReference("a b c a b")
        assert ref.token_ngrams(2) is ref.token_ngrams(2)
        assert ref.char_grams(3) is ref.char_grams(3)
        assert ref.char_total(3) == sum(ref.char_grams(3).values())

    def test_ref_len_matches_tokenizer(self):
        ref = CompiledReference("engine.put(var, data)")
        assert ref.ref_len == len(tokenize_13a("engine.put(var, data)"))

    def test_counters_not_polluted_by_lookups(self):
        # scoring must never grow the shared reference counters
        ref = compile_reference("alpha beta gamma")
        before = dict(ref.token_ngrams(1))
        bleu_compiled("delta epsilon zeta", ref)
        assert dict(ref.token_ngrams(1)) == before


class TestTokenizerCache:
    @settings(max_examples=120, deadline=None)
    @given(s=st.text(alphabet=st.characters(codec="ascii"), max_size=240))
    def test_cached_equals_reference_implementation(self, s):
        assert list(tokenize_13a_cached(s)) == _tokenize_13a_reference(s)

    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(text, min_size=2, max_size=10))
    def test_multiline_split_equals_reference(self, lines):
        s = "\n".join(lines)
        assert list(tokenize_13a_cached(s)) == _tokenize_13a_reference(s)

    def test_hyphenated_line_join(self):
        assert tokenize_13a("work-\nflow") == ["workflow"]

    def test_returns_fresh_list(self):
        a = tokenize_13a("alpha beta")
        a.append("junk")
        assert tokenize_13a("alpha beta") == ["alpha", "beta"]

    def test_digit_context_at_line_boundaries(self):
        # the per-line fast path must preserve the period/digit rules
        for s in (".5 rest", "x.\n.5", "3\n.5", "5.\n3", "a.\n.b", ".5\ntail"):
            assert list(tokenize_13a_cached(s)) == _tokenize_13a_reference(s)


class TestEmptyStringScoring:
    """Zero-length hypothesis/reference sweep (metrics/ edge-case audit)."""

    def test_bleu_empty_hypothesis_is_zero(self):
        assert bleu("", "some reference text") == 0.0

    def test_bleu_empty_reference_is_zero(self):
        # smoothing must not fabricate similarity to an empty reference
        assert bleu("some hypothesis text", "") == 0.0

    def test_bleu_both_empty_is_zero(self):
        assert bleu("", "") == 0.0

    def test_chrf_empty_hypothesis_is_zero(self):
        assert chrf("", "some reference text") == 0.0

    def test_chrf_empty_reference_is_zero(self):
        assert chrf("some hypothesis text", "") == 0.0

    def test_chrf_both_empty_is_zero(self):
        assert chrf("", "") == 0.0

    @pytest.mark.parametrize("hyp,ref", [("", "ref text"), ("hyp text", ""), ("", "")])
    def test_compiled_agrees_on_empties(self, hyp, ref):
        assert bleu_compiled(hyp, ref) == pytest.approx(bleu(hyp, ref), abs=1e-9)
        assert chrf_compiled(hyp, ref) == pytest.approx(chrf(hyp, ref), abs=1e-9)

    def test_whitespace_only_pair(self):
        assert bleu("   ", " \n ") == 0.0
        assert chrf("   ", " \n ") == 0.0

    def test_bleu_format_guards_zero_ref_len(self):
        score = corpus_bleu(["hello"], [""])
        assert score.ref_len == 0
        assert "ratio" in score.format()  # no ZeroDivisionError
