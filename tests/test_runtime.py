"""Parallel evaluation runtime: plans, executors, cache, determinism."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.experiments import (
    CellResult,
    ExperimentGrid,
    run_configuration,
    run_prompt_sensitivity,
)
from repro.core.experiments.configuration import configuration_task
from repro.core.task import evaluate
from repro.data.prompts import get_template
from repro.errors import HarnessError
from repro.llm.api import get_model
from repro.llm.intent import analyze_prompt
from repro.llm.simulated import SimulatedModel
from repro.metrics.stats import Aggregate
from repro.runtime import (
    AsyncExecutor,
    BatchingExecutor,
    FilesystemResultCache,
    InMemoryResultCache,
    MpiShardExecutor,
    Plan,
    ScoreCache,
    SerialExecutor,
    ThreadedExecutor,
    generation_key,
    run,
)
from repro.llm.types import GenerateConfig
from repro.store import SimFilesystem

EXECUTORS = {
    "serial": SerialExecutor,
    "threaded": lambda: ThreadedExecutor(max_workers=6),
    "mpi": lambda: MpiShardExecutor(nprocs=3),
    "async": lambda: AsyncExecutor(max_concurrency=6),
    "batched": lambda: BatchingExecutor(),
}


def small_sweep(executor=None, cache=None) -> ExperimentGrid:
    return run_configuration(
        models=["o3", "llama-3.3-70b"],
        systems=["adios2", "wilkins"],
        epochs=2,
        executor=executor,
        cache=cache,
    )


class TestPlan:
    def test_add_eval_expands_units(self):
        plan = Plan("p")
        task = configuration_task("wilkins")
        spec = plan.add_eval(task, "sim/o3", epochs=3)
        assert len(plan) == 3
        assert spec.epochs == 3
        assert [u.epoch for u in plan.units] == [0, 1, 2]
        # solver chain already ran: the prompt is rendered
        assert "Wilkins" in plan.units[0].prompt

    def test_uids_unique_even_for_identical_cells(self):
        plan = Plan("p")
        task = configuration_task("wilkins")
        plan.add_eval(task, "sim/o3", epochs=2)
        plan.add_eval(task, "sim/o3", epochs=2)
        uids = [u.uid for u in plan.units]
        assert len(set(uids)) == 4
        # ...but the generation keys coincide pairwise (same content)
        keys = {u.key for u in plan.units}
        assert len(keys) == 2

    def test_invalid_epochs(self):
        plan = Plan("p")
        with pytest.raises(HarnessError, match="epochs"):
            plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=0)

    def test_generation_key_sensitivity(self):
        base = GenerateConfig(seed=0)
        key = generation_key("prompt", "sim/o3", base)
        assert key == generation_key("prompt", "sim/o3", GenerateConfig(seed=0))
        assert key != generation_key("prompt!", "sim/o3", base)
        assert key != generation_key("prompt", "sim/claude-sonnet-4", base)
        assert key != generation_key("prompt", "sim/o3", GenerateConfig(seed=1))
        assert key != generation_key(
            "prompt", "sim/o3", GenerateConfig(temperature=0.7, seed=0)
        )

    def test_generation_key_golden_values(self):
        """Pinned content addresses: the on-disk store contract.

        A durable :mod:`repro.persist` store written today must still be
        consulted correctly by any future build, so the key derivation
        may never drift.  If this test fails, the change breaks every
        existing on-disk cache — don't update the constants unless that
        cost is intended (and then bump the store layout too).
        """
        assert generation_key(
            "Generate the ADIOS2 XML configuration for a 3-node workflow.",
            "sim/gpt-4o",
            GenerateConfig(temperature=0.2, top_p=0.95, max_tokens=4096, seed=0),
        ) == "9958be4ab9f9baf17f52887cc7a9f9612110e3aa35aff3f95d3532abe5f94a1c"
        assert generation_key(
            "Generate the ADIOS2 XML configuration for a 3-node workflow.",
            "sim/gpt-4o",
            GenerateConfig(temperature=0.2, top_p=0.95, max_tokens=4096, seed=3),
        ) == "6f18d905b31455e1233cd87223c5ffaa1378c2beb46e4a7b15712d6e6baf7a78"
        assert generation_key("", "sim/o3", GenerateConfig()) == (
            "d126e8b1d262ca47c6730a9227ddf70843ed9d5bc9b33da3f52ddfea367f1daa"
        )


class TestExecutorEquivalence:
    """Serial, threaded and MPI-shard execution must be bit-identical."""

    @pytest.fixture(scope="class")
    def serial_grid(self):
        return small_sweep(SerialExecutor())

    @pytest.mark.parametrize("name", ["threaded", "mpi", "async", "batched"])
    def test_grid_identical_to_serial(self, serial_grid, name):
        grid = small_sweep(EXECUTORS[name]())
        assert grid.cells == serial_grid.cells

    @pytest.mark.parametrize("name", sorted(EXECUTORS))
    def test_prompt_sensitivity_identical(self, name):
        result = run_prompt_sensitivity(
            "configuration",
            models=["o3"],
            variants=["original", "detailed"],
            conditions=["wilkins"],
            epochs=1,
            executor=EXECUTORS[name](),
        )
        reference = run_prompt_sensitivity(
            "configuration",
            models=["o3"],
            variants=["original", "detailed"],
            conditions=["wilkins"],
            epochs=1,
        )
        assert result == reference

    def test_run_stats_account_every_unit(self):
        plan = Plan("p")
        task = configuration_task("wilkins")
        plan.add_eval(task, "sim/o3", epochs=2)
        outcome = run(plan, executor=ThreadedExecutor(4))
        assert outcome.stats.total_units == 2
        assert outcome.stats.generated == 2
        assert outcome.stats.cache_hits == 0
        assert outcome.stats.deduplicated == 0

    def test_in_run_deduplication(self):
        plan = Plan("p")
        task = configuration_task("wilkins")
        plan.add_eval(task, "sim/o3", epochs=2)
        plan.add_eval(task, "sim/o3", epochs=2)  # identical generations
        outcome = run(plan)
        assert outcome.stats.total_units == 4
        assert outcome.stats.generated == 2
        assert outcome.stats.deduplicated == 2
        # deduplicated units share score-cache entries: 2 computed, 2 hits
        assert outcome.stats.scores_computed == 2
        assert outcome.stats.score_hits == 2

    def test_scores_identical_to_reference_metrics(self):
        # the compiled-metrics scoring path must agree with the plain
        # reference implementations on every scored unit
        from repro.metrics import bleu as ref_bleu, chrf as ref_chrf

        plan = Plan("p")
        for system in ("wilkins", "adios2"):
            plan.add_eval(configuration_task(system), "sim/o3", epochs=2)
        outcome = run(plan)
        targets = {u.uid: u.target for u in plan.units}
        for uid, result in outcome.results.items():
            answer, target = result.score.answer, targets[uid]
            assert result.score["bleu"] == pytest.approx(
                ref_bleu(answer, target), abs=1e-9
            )
            assert result.score["chrf"] == pytest.approx(
                ref_chrf(answer, target), abs=1e-9
            )

    def test_broken_executor_is_detected(self):
        class LossyExecutor:
            def execute(self, units):
                return {}

        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=1)
        with pytest.raises(HarnessError, match="no generation"):
            run(plan, executor=LossyExecutor())


def count_generates(monkeypatch) -> list:
    """Instrument SimulatedModel.generate with a call recorder."""
    calls = []
    real = SimulatedModel.generate

    def recording(self, messages, config):
        calls.append((self.name, config.seed))
        return real(self, messages, config)

    monkeypatch.setattr(SimulatedModel, "generate", recording)
    return calls


class TestResultCache:
    @pytest.mark.parametrize("backend", ["memory", "filesystem"])
    def test_warm_cache_identical_and_zero_generations(self, backend, monkeypatch):
        cache = (
            InMemoryResultCache()
            if backend == "memory"
            else FilesystemResultCache(SimFilesystem())
        )
        cold = small_sweep(cache=cache)
        calls = count_generates(monkeypatch)
        warm = small_sweep(cache=cache)
        assert calls == [], "warm cache rerun must not call the model"
        assert warm.cells == cold.cells

    def test_cache_shared_across_executors(self):
        cache = InMemoryResultCache()
        cold = small_sweep(SerialExecutor(), cache=cache)
        warm = small_sweep(MpiShardExecutor(2), cache=cache)
        assert warm.cells == cold.cells

    def test_cache_shared_across_sweeps(self, monkeypatch):
        # the sensitivity sweep's `original` variant at epoch 0 reuses the
        # table sweep's generations — the cross-experiment cache case
        cache = InMemoryResultCache()
        run_configuration(
            models=["o3"], systems=["wilkins"], epochs=1, cache=cache
        )
        calls = count_generates(monkeypatch)
        run_prompt_sensitivity(
            "configuration",
            models=["o3"],
            variants=["original"],
            conditions=["wilkins"],
            epochs=1,
            cache=cache,
        )
        assert calls == []

    def test_filesystem_backend_roundtrip(self):
        fs = SimFilesystem()
        cache = FilesystemResultCache(fs, prefix="gen")
        assert cache.get("missing") is None
        task = configuration_task("wilkins")
        plan = Plan("p")
        plan.add_eval(task, "sim/o3", epochs=1)
        run(plan, cache=cache)
        key = plan.units[0].key
        assert key in cache
        assert f"gen/{key}" in fs.listdir()
        hit = cache.get(key)
        assert hit is not None and hit.cached

    def test_stats_hit_rate(self):
        cache = InMemoryResultCache()
        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=2)
        assert run(plan, cache=cache).stats.hit_rate == 0.0
        plan2 = Plan("p2")
        plan2.add_eval(configuration_task("wilkins"), "sim/o3", epochs=2)
        stats = run(plan2, cache=cache).stats
        assert stats.hit_rate == 1.0
        assert stats.generated == 0


class TestScoreCache:
    def test_multi_epoch_warm_rerun_hits_score_cache(self):
        # multi-epoch plan, warm result cache, shared score cache: the
        # rerun re-scores nothing and its EvalResults are unchanged
        cache = InMemoryResultCache()
        scores = ScoreCache()
        plan = Plan("p")
        task = configuration_task("wilkins")
        spec = plan.add_eval(task, "sim/gemini-2.5-pro", epochs=3)
        cold = run(plan, cache=cache, score_cache=scores)
        assert cold.stats.scores_computed == 3
        assert cold.stats.score_hits == 0

        plan2 = Plan("p2")
        spec2 = plan2.add_eval(task, "sim/gemini-2.5-pro", epochs=3)
        warm = run(plan2, cache=cache, score_cache=scores)
        assert warm.stats.generated == 0
        assert warm.stats.score_hits > 0
        assert warm.stats.score_hits == 3
        assert warm.stats.scores_computed == 0
        a, b = cold.eval_result(spec), warm.eval_result(spec2)
        assert a.aggregate("bleu") == b.aggregate("bleu")
        assert a.aggregate("chrf") == b.aggregate("chrf")

    def test_stats_account_every_unit(self):
        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=2)
        stats = run(plan).stats
        assert stats.scores_computed + stats.score_hits == stats.total_units

    def test_scorer_fingerprint_separates_different_scorers(self):
        from repro.core.scorers import CodeSimilarityScorer
        from repro.runtime import score_key

        class FakeUnit:
            key = "k"
            target = "t"

        a, b = FakeUnit(), FakeUnit()
        a.scorer = CodeSimilarityScorer(metrics=("bleu",))
        b.scorer = CodeSimilarityScorer(metrics=("bleu", "chrf"))
        assert score_key(a, "h") != score_key(b, "h")
        # equal-config scorer instances share entries
        b.scorer = CodeSimilarityScorer(metrics=("bleu",))
        assert score_key(a, "h") == score_key(b, "h")

    def test_list_metrics_scorer_still_scores(self):
        # metrics passed as a list (legal pre-engine) must not produce an
        # unhashable score-cache key
        from repro.core.samples import Sample
        from repro.core.scorers import CodeSimilarityScorer
        from repro.core.task import Task

        task = Task(
            name="list-metrics",
            dataset=[Sample(id="s", input="Provide the workflow configuration "
                            "file for the Wilkins workflow system.", target="x: 1")],
            solvers=[],
            scorer=CodeSimilarityScorer(metrics=["bleu"]),
        )
        plan = Plan("p")
        plan.add_eval(task, "sim/o3", epochs=2)
        outcome = run(plan)
        assert outcome.stats.scores_computed == 2

    def test_unhashable_fingerprint_falls_back_to_scorer_identity(self):
        from repro.runtime import score_key

        class Weird:
            fingerprint = ["not", "hashable"]

            def __call__(self, completion, target):  # pragma: no cover
                raise AssertionError

        class FakeUnit:
            key = "k"
            target = "t"
            scorer = Weird()

        key = score_key(FakeUnit(), "h")
        hash(key)  # must be usable as a dict key
        assert key[2] is FakeUnit.scorer

    def test_eviction_bounds_the_cache(self):
        cache = ScoreCache(maxsize=2)
        for i in range(5):
            cache.put(("k", i), i)
        assert len(cache) == 2
        assert cache.get(("k", 4)) == 4
        assert cache.get(("k", 0)) is None

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(HarnessError, match="maxsize"):
            ScoreCache(maxsize=0)


class TestThreadedExecutorPool:
    def test_pool_persists_across_executes(self):
        executor = ThreadedExecutor(2)
        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=1)
        run(plan, executor=executor)
        pool = executor._pool
        assert pool is not None
        plan2 = Plan("p2")
        plan2.add_eval(configuration_task("adios2"), "sim/o3", epochs=1)
        run(plan2, executor=executor)
        assert executor._pool is pool, "execute() must reuse the lazy pool"
        executor.close()
        assert executor._pool is None

    def test_close_is_idempotent_and_reopenable(self):
        executor = ThreadedExecutor(2)
        executor.close()  # close before first use is a no-op
        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=1)
        first = run(plan, executor=executor)
        executor.close()
        executor.close()
        # a closed executor transparently re-creates its pool
        again = run(plan, executor=executor)
        a = sorted((uid, r.score["bleu"]) for uid, r in first.results.items())
        b = sorted((uid, r.score["bleu"]) for uid, r in again.results.items())
        assert a == b
        executor.close()

    def test_context_manager_closes_pool(self):
        plan = Plan("p")
        plan.add_eval(configuration_task("wilkins"), "sim/o3", epochs=1)
        with ThreadedExecutor(2) as executor:
            run(plan, executor=executor)
            assert executor._pool is not None
        assert executor._pool is None


class TestEvaluateRouting:
    """core.task.evaluate is a thin wrapper over the runtime now."""

    def test_evaluate_accepts_unregistered_model_instance(self):
        from repro.llm.api import Model
        from repro.llm.types import ModelOutput, ModelUsage

        class EchoProvider:
            # unique name: the model registry is process-global and
            # test_llm_core.py already registers "custom/echo"
            name = "custom/echo-runtime"

            def generate(self, messages, config):
                return ModelOutput(
                    model=self.name,
                    completion=f"```\n{messages[-1].content[:10]}\n```",
                    usage=ModelUsage(1, 1),
                )

        task = configuration_task("wilkins")
        result = evaluate(task, Model(EchoProvider()), epochs=2)
        assert result.model_name == "custom/echo-runtime"
        assert len(result.samples[0].completions) == 2

    def test_conflicting_instance_name_rejected(self):
        from repro.errors import ModelError
        from repro.llm.api import Model

        class Impostor:
            name = "sim/o3"  # collides with the builtin registration

            def generate(self, messages, config):  # pragma: no cover
                raise AssertionError("must never be called")

        plan = Plan("p")
        with pytest.raises(ModelError, match="already registered"):
            plan.add_eval(configuration_task("wilkins"), Model(Impostor()), epochs=1)

    def test_registered_instance_passes_through(self):
        # the exact instance fetched from the registry is accepted as-is
        task = configuration_task("wilkins")
        model = get_model("sim/o3")
        result = evaluate(task, model, epochs=1)
        assert result.model_name == "sim/o3"


class TestExecutorErrors:
    """Provider exceptions surface identically on every executor."""

    @pytest.mark.parametrize("name", sorted(EXECUTORS))
    def test_provider_error_propagates(self, name):
        from repro.core.scorers import CodeSimilarityScorer
        from repro.core.task import Task
        from repro.core.samples import Sample
        from repro.errors import GenerationError

        # an empty prompt makes SimulatedModel raise GenerationError
        task = Task(
            name="broken",
            dataset=[Sample(id="s", input="", target="x")],
            solvers=[],
            scorer=CodeSimilarityScorer(),
        )
        plan = Plan("p")
        plan.add_eval(task, "sim/o3", epochs=1)
        with pytest.raises(GenerationError, match="empty prompt"):
            run(plan, executor=EXECUTORS[name]())

    def test_evaluate_accepts_executor_and_cache(self):
        task = configuration_task("wilkins")
        cache = InMemoryResultCache()
        a = evaluate(task, "sim/o3", epochs=2, cache=cache)
        b = evaluate(task, "sim/o3", epochs=2, executor=ThreadedExecutor(2),
                     cache=cache)
        assert a.aggregate("bleu") == b.aggregate("bleu")
        assert [s.completions for s in a.samples] == [
            s.completions for s in b.samples
        ]

    def test_evaluate_matches_legacy_shape(self):
        task = configuration_task("wilkins")
        result = evaluate(task, "sim/o3", epochs=3)
        assert result.epochs == 3
        assert result.model_name == "sim/o3"
        assert len(result.samples) == 1
        assert len(result.samples[0].scores) == 3


class TestGridValidation:
    def test_add_unknown_row_raises(self):
        grid = ExperimentGrid("g", row_keys=["a"], models=["m"])
        cell = CellResult(
            Aggregate(50.0, 0.0, 1), Aggregate(50.0, 0.0, 1)
        )
        with pytest.raises(HarnessError, match="no row"):
            grid.add("b", "m", cell)

    def test_add_unknown_model_raises(self):
        grid = ExperimentGrid("g", row_keys=["a"], models=["m"])
        cell = CellResult(
            Aggregate(50.0, 0.0, 1), Aggregate(50.0, 0.0, 1)
        )
        with pytest.raises(HarnessError, match="no model"):
            grid.add("a", "nope", cell)


class TestCalibrationRace:
    def test_concurrent_cell_calibrates_once(self, monkeypatch):
        import repro.llm.simulated as simulated

        counter = {"n": 0}
        real = simulated.calibrate

        def slow_calibrate(*args, **kwargs):
            counter["n"] += 1
            time.sleep(0.05)  # widen the check-then-compute window
            return real(*args, **kwargs)

        monkeypatch.setattr(simulated, "calibrate", slow_calibrate)

        profile = get_model("sim/o3").provider.profile
        model = SimulatedModel(profile)
        prompt = get_template("configuration", "original").body.format(
            system="Wilkins"
        )
        intent = analyze_prompt(prompt)

        barrier = threading.Barrier(8)
        cells = []

        def hammer():
            barrier.wait()
            cells.append(model._cell(intent))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert counter["n"] == 1, "concurrent callers must calibrate once"
        assert all(c == cells[0] for c in cells)
