"""mteval-13a tokenization and n-gram utilities."""

from __future__ import annotations

import pytest

from repro.metrics.tokenizers import (
    all_ngrams,
    char_ngrams,
    clipped_matches,
    ngrams,
    token_count,
    tokenize_13a,
)


class TestTokenize13a:
    def test_punctuation_separated(self):
        assert tokenize_13a("engine.put(var)") == ["engine", ".", "put", "(", "var", ")"]

    def test_decimal_numbers_kept_together(self):
        assert "3.14" in tokenize_13a("pi is 3.14 exactly")

    def test_comma_in_numbers_kept(self):
        assert "1,000" in tokenize_13a("n = 1,000")

    def test_trailing_period_split(self):
        assert tokenize_13a("done.")[-1] == "."

    def test_newlines_joined(self):
        assert tokenize_13a("a\nb") == ["a", "b"]

    def test_hyphenation_repaired(self):
        assert tokenize_13a("work-\nflow") == ["workflow"]

    def test_entities_decoded(self):
        assert tokenize_13a("a &amp; b") == ["a", "&", "b"]

    def test_digit_dash_split(self):
        assert tokenize_13a("3-node") == ["3", "-", "node"]


class TestNgrams:
    def test_bigrams(self):
        grams = ngrams(["a", "b", "a", "b"], 2)
        assert grams[("a", "b")] == 2
        assert grams[("b", "a")] == 1

    def test_order_longer_than_sequence(self):
        assert len(ngrams(["a"], 2)) == 0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_all_ngrams_keys(self):
        table = all_ngrams(["a", "b", "c"], 3)
        assert set(table) == {1, 2, 3}


class TestCharNgrams:
    def test_whitespace_removed(self):
        assert char_ngrams("a b", 2) == char_ngrams("ab", 2)

    def test_whitespace_kept(self):
        assert char_ngrams("a b", 2, remove_whitespace=False) != char_ngrams("ab", 2)


class TestClippedMatches:
    def test_clipping(self):
        hyp = ngrams(["x", "x", "x"], 1)
        ref = ngrams(["x"], 1)
        assert clipped_matches(hyp, ref) == 1

    def test_disjoint(self):
        assert clipped_matches(ngrams(["a"], 1), ngrams(["b"], 1)) == 0


class TestTokenCount:
    def test_sums_over_texts(self):
        assert token_count(["a b", "c"]) == 3
