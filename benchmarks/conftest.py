"""Shared benchmark fixtures.

Every bench writes its rendered table/heatmap to ``benchmarks/output/``
so the reproduction artifacts survive the run regardless of pytest's
capture settings, and prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def report(report_dir):
    """Callable: report(name, text) — persist and print one artifact."""

    def _report(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report
