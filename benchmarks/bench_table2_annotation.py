"""Table 2 — task code annotation experiment.

Regenerates the paper's Table 2: 4 models × {ADIOS2, Henson, PyCOMPSs,
Parsl}, 5 trials.  Asserts the paper's shape claims:

* annotation beats configuration overall (more code examples online);
* PyCOMPSs is the easiest system overall (annotations are its core
  model), yet LLaMA collapses on it (missing ``compss_wait_on_file``);
* Parsl shows ChrF ≫ BLEU (redundant executors punished by n-gram
  precision, tolerated by character F-score).
"""

from __future__ import annotations

from repro.core.experiments import run_annotation, run_configuration
from repro.data import TABLE2
from repro.reporting import compare_with_paper, render_grid_table
from repro.runtime import ThreadedExecutor

EPOCHS = 5


def bench_table2_annotation(benchmark, report):
    grid = benchmark.pedantic(
        lambda: run_annotation(epochs=EPOCHS, executor=ThreadedExecutor(8)),
        rounds=1, iterations=1,
    )

    lines = [render_grid_table(grid, "Table 2: task code annotation"), ""]
    for system in grid.row_keys:
        for model in grid.models:
            lines.append(
                compare_with_paper(
                    grid.cell(system, model),
                    TABLE2[(system, model)],
                    f"{system}/{model}",
                )
            )
    report("table2_annotation", "\n".join(lines))

    # --- shape assertions ---------------------------------------------------
    assert grid.best_row("bleu") == "pycompss"

    llama_pycompss = grid.cell("pycompss", "llama-3.3-70b").bleu.mean
    assert llama_pycompss < 20.0, "LLaMA should collapse on PyCOMPSs"

    parsl_overall = grid.overall_by_row()["parsl"]
    assert parsl_overall.chrf.mean > parsl_overall.bleu.mean + 8, (
        "Parsl ChrF should exceed BLEU (redundant executor insertions)"
    )

    # annotation beats configuration overall (paper §4.2)
    config_grid = run_configuration(epochs=2)
    assert (
        grid.grand_overall().bleu.mean > config_grid.grand_overall().bleu.mean
    )

    for (system, model), paper in TABLE2.items():
        measured = grid.cell(system, model).bleu.mean
        assert abs(measured - paper.bleu) < 10.0, (system, model, measured, paper.bleu)
