"""Table 3 — task code translation experiment.

Regenerates the paper's Table 3: 4 models × 4 directions, 5 trials.
Asserts the paper's shape claims:

* translating *into* the well-documented system of a pair is easier:
  →ADIOS2 beats →Henson and →PyCOMPSs beats →Parsl;
* no single model is uniformly best — o3 wins Henson→ADIOS2 while
  Gemini-2.5-Pro wins ADIOS2→Henson;
* translation scores sit slightly below annotation overall.
"""

from __future__ import annotations

from repro.core.experiments import run_annotation, run_translation
from repro.data import TABLE3
from repro.reporting import compare_with_paper, render_grid_table
from repro.runtime import MpiShardExecutor

EPOCHS = 5


def bench_table3_translation(benchmark, report):
    # shard the sweep across 4 simulated MPI ranks; results are
    # bit-identical to serial execution (seeds live in the work units)
    grid = benchmark.pedantic(
        lambda: run_translation(epochs=EPOCHS, executor=MpiShardExecutor(4)),
        rounds=1, iterations=1,
    )

    lines = [render_grid_table(grid, "Table 3: task code translation"), ""]
    for direction in grid.row_keys:
        for model in grid.models:
            lines.append(
                compare_with_paper(
                    grid.cell(direction, model),
                    TABLE3[(direction, model)],
                    f"{direction[0]}->{direction[1]}/{model}",
                )
            )
    report("table3_translation", "\n".join(lines))

    # --- shape assertions ---------------------------------------------------
    by_row = grid.overall_by_row()
    assert (
        by_row[("henson", "adios2")].bleu.mean
        > by_row[("adios2", "henson")].bleu.mean
    ), "translating to ADIOS2 should be easier than to Henson"
    assert (
        by_row[("parsl", "pycompss")].bleu.mean
        > by_row[("pycompss", "parsl")].bleu.mean
    ), "translating to PyCOMPSs should be easier than to Parsl"

    h2a = {m: grid.cell(("henson", "adios2"), m).bleu.mean for m in grid.models}
    a2h = {m: grid.cell(("adios2", "henson"), m).bleu.mean for m in grid.models}
    assert max(h2a, key=h2a.get) == "o3"
    assert max(a2h, key=a2h.get) == "gemini-2.5-pro"

    annotation = run_annotation(epochs=2)
    assert grid.grand_overall().bleu.mean < annotation.grand_overall().bleu.mean + 2

    for (direction, model), paper in TABLE3.items():
        measured = grid.cell(direction, model).bleu.mean
        assert abs(measured - paper.bleu) < 10.0, (direction, model, measured)
