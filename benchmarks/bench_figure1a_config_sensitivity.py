"""Figure 1(a) — prompt-sensitivity heatmaps, workflow configuration.

5 prompt variants × 4 models × 3 systems (single run per cell, like the
paper's heatmaps).  Asserts the paper's claims: no prompt variant is
uniformly best across models, and the Henson/Wilkins maps show the least
spread (all models uniformly struggle).
"""

from __future__ import annotations

import numpy as np

from repro.core.experiments import run_prompt_sensitivity
from repro.data import FIGURE1A, MODELS, PROMPT_VARIANTS
from repro.reporting import render_figure1


def bench_figure1a_config_sensitivity(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_prompt_sensitivity("configuration", epochs=1),
        rounds=1,
        iterations=1,
    )
    report(
        "figure1a_config_sensitivity",
        render_figure1(results, "Figure 1(a): BLEU by prompt type — configuration"),
    )

    # no variant is best for every model
    for system in results:
        best_variant_per_model = {
            model: max(PROMPT_VARIANTS, key=lambda v: results[system][v][model])
            for model in MODELS
        }
        if len(set(best_variant_per_model.values())) > 1:
            break
    else:
        raise AssertionError("one prompt variant dominated every model and system")

    # Henson & Wilkins heatmaps show less spread than ADIOS2 (paper §4.4)
    def spread(system: str) -> float:
        values = [
            results[system][v][m] for v in PROMPT_VARIANTS for m in MODELS
        ]
        return float(np.std(values))

    assert spread("henson") < spread("adios2")
    assert spread("wilkins") < spread("adios2")

    # per-cell fidelity vs the published heatmap
    for system, rows in FIGURE1A.items():
        for variant, values in rows.items():
            if variant == "original":
                # the original row is calibrated against Tables 1-3; the
                # paper's own heatmap original-row values differ from its
                # tables (single-run heatmaps vs 5-trial tables)
                continue
            for idx, model in enumerate(MODELS):
                measured = results[system][variant][model]
                assert abs(measured - values[idx]) < 12.0, (
                    system, variant, model, measured, values[idx],
                )
