"""Ablation — knowledge-injection ladder (extension beyond the paper).

The paper demonstrates few-shot prompting (§4.5) and names RAG and
fine-tuning as alternatives (§4.6).  This ablation measures the ladder
we can exercise offline:

    zero-shot  <  documentation context (RAG-lite)  <  few-shot example

and additionally runs the iterative repair loop (§5 future work),
reporting how many iterations each model needs to produce a Wilkins
configuration that passes validation.
"""

from __future__ import annotations

from repro.core.repair import RepairLoop
from repro.core.samples import Sample
from repro.core.solvers import doc_context_solver, few_shot_solver, prompt_solver
from repro.core.task import Task, evaluate
from repro.core.assets import fewshot_example_config, reference_config
from repro.data import MODELS
from repro.data.prompts import get_template

EPOCHS = 3
SYSTEM = "wilkins"


def _task(mode: str) -> Task:
    sample = Sample(
        id=f"ablation/{SYSTEM}/{mode}",
        input="",
        target=reference_config(SYSTEM),
        metadata={
            "experiment": "configuration",
            "system": SYSTEM,
            "system_display": "Wilkins",
        },
    )
    solvers = [prompt_solver("original")]
    if mode == "doc-context":
        solvers.append(doc_context_solver(SYSTEM, "Wilkins"))
    elif mode == "few-shot":
        solvers.append(few_shot_solver(fewshot_example_config(SYSTEM), "Wilkins"))
    return Task(name=f"ablation/{mode}", dataset=[sample], solvers=solvers)


def bench_ablation_context_ladder(benchmark, report):
    def run_ladder():
        out = {}
        for mode in ("zero-shot", "doc-context", "few-shot"):
            task = _task(mode)
            out[mode] = {
                model: evaluate(task, f"sim/{model}", epochs=EPOCHS).aggregate("bleu")
                for model in MODELS
            }
        return out

    ladder = benchmark.pedantic(run_ladder, rounds=1, iterations=1)

    lines = ["Ablation: knowledge-injection ladder (Wilkins configuration BLEU)", ""]
    for mode, per_model in ladder.items():
        row = "  ".join(f"{m}={per_model[m].render()}" for m in MODELS)
        lines.append(f"{mode:12s} {row}")

    # the ladder is monotone for every model
    for model in MODELS:
        zero = ladder["zero-shot"][model].mean
        doc = ladder["doc-context"][model].mean
        few = ladder["few-shot"][model].mean
        assert zero < doc < few, (model, zero, doc, few)

    # repair loop: every model converges within the iteration budget
    request = get_template("configuration", "original").body.format(system="Wilkins")
    lines.append("")
    lines.append("Repair loop (validator-feedback iterations to a valid config):")
    for model in MODELS:
        outcome = RepairLoop(f"sim/{model}", SYSTEM, max_iterations=4).run(request)
        assert outcome.converged, f"{model} did not converge"
        lines.append(f"  {model}: {outcome.iterations} iteration(s)")

    report("ablation_context_ladder", "\n".join(lines))
