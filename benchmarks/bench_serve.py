"""Networked store service — request latency, throughput, remote-vs-local.

Boots a real :class:`repro.serve.StoreServer` (TCP on a loopback
ephemeral port, 2 shards) inside this process and drives it with the
production :class:`repro.serve.RemoteRunStore` client on three
scenarios:

* ``remote_records`` — batched ``put_generations`` then, from a fresh
  client, batched ``get_generations`` of every record, against the same
  records read through a *local* ``RunStore.get_generations`` on the
  same machine in the same run.  ``remote_get_over_local_get`` is the
  hardware-normalized price of the wire: frame codec + loopback socket
  over the mmap read path.  The regression gate caps it — the cap is
  generous (loopback latency varies across runners) but a broken
  pipelining or pooling path overshoots it by an order of magnitude;
* ``request_latency`` — single in-flight ``ping`` round trips;
  ``p50_ms``/``p99_ms`` are the per-request latency distribution and
  ``req_per_s`` the sequential request rate;
* ``pipelined_throughput`` — ``get_many`` with all keys in flight as
  pipelined chunk frames; ``req_per_s`` counts frames, showing what
  pipelining buys over one-at-a-time requests.

Results land in ``benchmarks/output/serve.txt`` (human) and merge into
``BENCH_metrics.json`` under the ``serve`` key (machine), gated by
``check_regression.py`` like every other section.  Run after
``bench_metrics_hotpath.py`` (the CI order).  ``REPRO_BENCH_SMOKE=1``
shrinks the record count.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import shutil
import statistics
import tempfile
import threading
import time

from repro.llm.types import ModelUsage
from repro.persist import RunStore
from repro.runtime.units import Generation
from repro.serve import RemoteRunStore, StoreServer

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_metrics.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_RECORDS = 256 if SMOKE else 2048
N_PINGS = 200 if SMOKE else 1000


def _synthetic_generation(i: int) -> Generation:
    return Generation(
        key=f"{i:064x}",
        model="sim/bench",
        completion=f"synthetic completion {i} " + "x" * 160,
        usage=ModelUsage(input_tokens=100, output_tokens=200),
        elapsed_s=0.0,
    )


class _ServerThread:
    """A StoreServer on a loopback port, running on its own event loop."""

    def __init__(self, root: pathlib.Path) -> None:
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int = 0
        self._thread = threading.Thread(target=self._main, args=(root,), daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("store server did not come up")

    def _main(self, root: pathlib.Path) -> None:
        async def body() -> None:
            server = StoreServer(root, shards=2)
            _, self.port = await server.start_tcp("127.0.0.1", 0)
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await server.aclose()

        asyncio.run(body())

    def stop(self) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def _bench_remote_records(server: _ServerThread, local_root: pathlib.Path) -> dict:
    gens = [_synthetic_generation(i) for i in range(N_RECORDS)]
    keys = [gen.key for gen in gens]
    url = f"tcp://127.0.0.1:{server.port}"

    with RemoteRunStore(url, ("tcp", ("127.0.0.1", server.port))) as remote:
        started = time.perf_counter()
        remote.put_generations(gens)
        put_s = time.perf_counter() - started

    # local reference on the same records, same machine, same run
    with RunStore(local_root) as local:
        local.put_generations(gens)
    local_get_s = float("inf")
    for _ in range(3):
        with RunStore(local_root, read_cache_entries=0) as local:
            started = time.perf_counter()
            found = local.get_generations(keys)
            local_get_s = min(local_get_s, time.perf_counter() - started)
        assert len(found) == N_RECORDS

    # fresh client: pooled connections start cold, like a new process
    remote_get_s = float("inf")
    for _ in range(3):
        with RemoteRunStore(url, ("tcp", ("127.0.0.1", server.port))) as remote:
            started = time.perf_counter()
            found = remote.get_generations(keys)
            remote_get_s = min(remote_get_s, time.perf_counter() - started)
        assert len(found) == N_RECORDS

    remote_ms = remote_get_s * 1000 / N_RECORDS
    local_ms = local_get_s * 1000 / N_RECORDS
    return {
        "scenario": "remote_records",
        "n_records": N_RECORDS,
        "remote_put_ms_per_record": put_s * 1000 / N_RECORDS,
        "remote_get_many_ms_per_record": remote_ms,
        "local_get_many_ms_per_record": local_ms,
        "remote_get_over_local_get": remote_ms / max(local_ms, 1e-9),
    }


def _bench_request_latency(server: _ServerThread) -> dict:
    with RemoteRunStore(
        f"tcp://127.0.0.1:{server.port}", ("tcp", ("127.0.0.1", server.port))
    ) as remote:
        remote.ping()  # connect outside the timed window
        samples = []
        started_all = time.perf_counter()
        for _ in range(N_PINGS):
            started = time.perf_counter()
            remote.ping()
            samples.append((time.perf_counter() - started) * 1000)
        total_s = time.perf_counter() - started_all
    samples.sort()
    return {
        "scenario": "request_latency",
        "n_requests": N_PINGS,
        "p50_ms": statistics.median(samples),
        "p99_ms": samples[min(len(samples) - 1, int(len(samples) * 0.99))],
        "req_per_s": N_PINGS / max(total_s, 1e-9),
    }


def _bench_pipelined_throughput(server: _ServerThread) -> dict:
    from repro.serve.client import CHUNK

    keys = [f"{i:064x}" for i in range(N_RECORDS)]
    n_frames = (len(keys) + CHUNK - 1) // CHUNK
    with RemoteRunStore(
        f"tcp://127.0.0.1:{server.port}", ("tcp", ("127.0.0.1", server.port))
    ) as remote:
        remote.ping()
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            found = remote.get_generations(keys)
            best = min(best, time.perf_counter() - started)
        assert len(found) == N_RECORDS
    return {
        "scenario": "pipelined_throughput",
        "n_records": N_RECORDS,
        "frames": n_frames,
        "get_many_ms": best * 1000,
        "req_per_s": n_frames / max(best, 1e-9),
        "records_per_s": N_RECORDS / max(best, 1e-9),
    }


def _merge_results(results: list[dict]) -> None:
    """Attach the serve section to BENCH_metrics.json, keeping the rest."""
    payload: dict = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["serve"] = {
        "benchmark": "serve",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def bench_serve(report):
    results = []
    lines = [
        f"networked store service ({'smoke' if SMOKE else 'full'} mode, "
        f"{N_RECORDS} records, {N_PINGS} pings)",
        "",
    ]

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-serve-"))
    server = _ServerThread(tmp / "served")
    try:
        records = _bench_remote_records(server, tmp / "local")
        results.append(records)
        lines.append(
            f"records   remote get_many "
            f"{records['remote_get_many_ms_per_record']:.4f} ms/rec   local "
            f"{records['local_get_many_ms_per_record']:.4f} ms/rec "
            f"(x{records['remote_get_over_local_get']:.1f})   remote put "
            f"{records['remote_put_ms_per_record']:.4f} ms/rec"
        )

        latency = _bench_request_latency(server)
        results.append(latency)
        lines.append(
            f"latency   p50 {latency['p50_ms']:.3f} ms   p99 "
            f"{latency['p99_ms']:.3f} ms   {latency['req_per_s']:.0f} req/s "
            "(single in-flight pings)"
        )

        pipelined = _bench_pipelined_throughput(server)
        results.append(pipelined)
        lines.append(
            f"pipeline  {pipelined['frames']} frame(s) in "
            f"{pipelined['get_many_ms']:.1f} ms   "
            f"{pipelined['records_per_s']:.0f} records/s "
            "(all chunks in flight)"
        )
    finally:
        server.stop()
        shutil.rmtree(tmp, ignore_errors=True)

    _merge_results(results)
    lines += ["", f"[machine-readable results merged into {RESULTS_PATH}]"]
    report("serve", "\n".join(lines))

    if not SMOKE:
        # smoke mode (CI) is report-only: shared runners add timing noise
        assert records["remote_get_over_local_get"] < 100.0, (
            "a pipelined loopback get_many should stay within two orders "
            "of magnitude of the local mmap path, got "
            f"{records['remote_get_over_local_get']:.1f}x"
        )
        assert latency["p50_ms"] < 5.0, (
            f"a loopback ping should take < 5 ms, got {latency['p50_ms']:.2f}"
        )
