"""Fault-tolerance layer — no-fault overhead and injected-fault sweeps.

Times the :class:`repro.runtime.FaultPolicy` machinery on two scenario
groups:

* ``overhead`` — the cost of *arming* fault tolerance when nothing
  faults: a small Table-1 configuration sweep run with ``faults=None``
  vs. an isolating :class:`FaultPolicy` (retry + deadline + quarantine
  bookkeeping armed, zero faults injected), alternating best-of-N so
  machine drift hits both sides equally.  The regression gate caps
  ``policy_over_baseline`` at 1.05: the fault layer must stay within
  5% of the bare runner when healthy;
* ``fault_rates_{serial,threaded,async}`` — the same sweep under a
  deterministic :class:`repro.testing.FaultPlan` injecting transient
  provider faults at 0%, 10% and 30% of requests (single-strike, so a
  healing retry policy absorbs every fault), per executor.  Reports the
  wall-clock ladder plus the measured retry amplification
  (provider calls / plan units) at 30%, and asserts the 30% grid is
  bit-identical to the fault-free one — the bench doubles as an
  end-to-end determinism check.

Timings land in ``benchmarks/output/faults.txt`` (human) and are merged
into ``BENCH_metrics.json`` under the ``faults`` key (machine).  Run
after ``bench_metrics_hotpath.py`` (the CI order): the metrics bench
rewrites the file without any previous ``faults`` section.  Set
``REPRO_BENCH_SMOKE=1`` (CI does) for fewer repeats.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.experiments import run_configuration
from repro.runtime import (
    AsyncExecutor,
    FaultPolicy,
    RetryPolicy,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.testing import FaultPlan, faulty_models

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_metrics.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

REPEATS = 3 if SMOKE else 5
SWEEP = dict(models=["o3", "llama-3.3-70b"], systems=["adios2", "wilkins"],
             epochs=2)
UNITS = 8  # 2 models x 2 systems x 2 epochs
SIM_MODELS = [f"sim/{m}" for m in SWEEP["models"]]
# seed 0 strikes 2/8 requests at 10% and 4/8 at 30% on this sweep (probed;
# rolls are per-key, so the 10% strike set is a subset of the 30% one)
FAULT_SEED = 0
FAULT_RATES = (0.0, 0.1, 0.3)

EXECUTORS = {
    "serial": SerialExecutor,
    "threaded": lambda: ThreadedExecutor(max_workers=6),
    "async": lambda: AsyncExecutor(max_concurrency=6),
}

# retries absorb every single-strike transient without sleeping
HEALING = FaultPolicy(retry=RetryPolicy(max_attempts=3, base_delay=0.0))
# the full production surface, armed but never triggered
ARMED = FaultPolicy(
    retry=RetryPolicy(max_attempts=3, base_delay=0.0),
    unit_deadline_s=60.0,
    on_failure="isolate",
)


def _timed_sweep(make_executor, faults=None) -> float:
    started = time.perf_counter()
    run_configuration(**SWEEP, executor=make_executor(), faults=faults)
    return time.perf_counter() - started


def _bench_overhead() -> dict:
    _timed_sweep(SerialExecutor)  # warmup: pay imports and calibration once
    baseline_s = policy_s = float("inf")
    for _ in range(REPEATS):  # alternate so drift hits both sides equally
        baseline_s = min(baseline_s, _timed_sweep(SerialExecutor))
        policy_s = min(policy_s, _timed_sweep(SerialExecutor, faults=ARMED))
    return {
        "scenario": "overhead",
        "units": UNITS,
        "repeats": REPEATS,
        "baseline_ms": baseline_s * 1000,
        "policy_ms": policy_s * 1000,
        "policy_over_baseline": policy_s / max(baseline_s, 1e-9),
    }


def _bench_fault_rates(name: str, make_executor) -> dict:
    result: dict = {"scenario": f"fault_rates_{name}", "units": UNITS,
                    "repeats": REPEATS, "fault_seed": FAULT_SEED}
    grids: dict[float, object] = {}
    for rate in FAULT_RATES:
        best_s = float("inf")
        injected = calls = 0
        for _ in range(REPEATS):
            # fresh context per pass: strike schedules are consumed, so a
            # reused wrapper would only fault on its first run
            plan = FaultPlan(seed=FAULT_SEED, transient_rate=rate,
                             transient_times=1)
            with faulty_models(SIM_MODELS, plan) as wrapped:
                started = time.perf_counter()
                grids[rate] = run_configuration(
                    **SWEEP, executor=make_executor(), faults=HEALING,
                )
                best_s = min(best_s, time.perf_counter() - started)
                injected = sum(p.injected_total for p in wrapped.values())
                calls = sum(p.calls + p.batch_calls for p in wrapped.values())
        pct = int(rate * 100)
        result[f"rate{pct}_ms"] = best_s * 1000
        result[f"rate{pct}_injected"] = injected
        if rate == FAULT_RATES[-1]:
            result["retry_amplification"] = calls / UNITS
    assert result["rate10_injected"] > 0 and result["rate30_injected"] > 0, (
        "fault seed never fired on this sweep; re-probe FAULT_SEED"
    )
    assert grids[0.3].cells == grids[0.0].cells, (
        "healed 30%-fault grid diverged from the fault-free grid"
    )
    result["rate30_over_rate0"] = (
        result["rate30_ms"] / max(result["rate0_ms"], 1e-9)
    )
    return result


def _merge_results(results: list[dict]) -> None:
    """Attach the faults section to BENCH_metrics.json, keeping the rest."""
    payload: dict = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["faults"] = {
        "benchmark": "faults",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def bench_faults(report):
    results = []
    lines = [
        f"fault-tolerance layer ({'smoke' if SMOKE else 'full'} mode, "
        f"{UNITS}-unit sweep, best of {REPEATS})",
        "",
    ]

    overhead = _bench_overhead()
    results.append(overhead)
    lines.append(
        f"overhead   bare {overhead['baseline_ms']:.1f} ms   armed policy "
        f"{overhead['policy_ms']:.1f} ms "
        f"(x{overhead['policy_over_baseline']:.3f}, cap 1.05)"
    )

    for name, make_executor in EXECUTORS.items():
        rates = _bench_fault_rates(name, make_executor)
        results.append(rates)
        lines.append(
            f"{name:<9}  0% {rates['rate0_ms']:.1f} ms   "
            f"10% {rates['rate10_ms']:.1f} ms "
            f"({rates['rate10_injected']} faults)   "
            f"30% {rates['rate30_ms']:.1f} ms "
            f"({rates['rate30_injected']} faults, "
            f"x{rates['retry_amplification']:.2f} calls/unit) — "
            "healed grids bit-identical"
        )

    _merge_results(results)
    lines += ["", f"[machine-readable results merged into {RESULTS_PATH}]"]
    report("faults", "\n".join(lines))

    if not SMOKE:
        # smoke mode (CI) leaves wall-clock gating to check_regression.py's
        # hardware-normalized comparison; full mode asserts locally too
        assert overhead["policy_over_baseline"] <= 1.05, (
            "an armed-but-idle fault policy must stay within 5% of the "
            f"bare runner, got x{overhead['policy_over_baseline']:.3f}"
        )
