"""Table 6 — o3 Wilkins configuration case study (zero-shot vs few-shot).

Deterministic checks matching the paper's qualitative analysis:

1. the Wilkins validator on the *published* zero-shot listing flags the
   invented schema (``workflow``/``command``/``processes``/``inputs``/
   ``outputs``/``dependencies``/...);
2. simulated zero-shot o3 hallucinates fields from the same family while
   few-shot o3 produces a clean, parseable Wilkins config (Table 6 left
   is identical to the ground truth);
3. zero-shot o3's chatter contains the fabricated ``wilkins.io``
   citation the paper reports.
"""

from __future__ import annotations

from repro.data.case_studies import TABLE6_FLAGGED_FIELDS, TABLE6_ZEROSHOT
from repro.core.assets import fewshot_example_config
from repro.data.prompts import FEWSHOT_SUFFIX, get_template
from repro.llm import GenerateConfig, get_model
from repro.utils.text import strip_markdown_chatter
from repro.workflows.wilkins import parse_wilkins_yaml, validate_config

_BASE_PROMPT = get_template("configuration", "original").body.format(system="Wilkins")


def bench_table6_case_study(benchmark, report):
    model = get_model("sim/o3")

    def run_case_study():
        zero = model.generate(_BASE_PROMPT, GenerateConfig(seed=0))
        few_prompt = _BASE_PROMPT + FEWSHOT_SUFFIX.format(
            system="Wilkins", example=fewshot_example_config("wilkins")
        )
        few = model.generate(few_prompt, GenerateConfig(seed=0))
        return zero.completion, few.completion

    zero_completion, few_completion = benchmark.pedantic(
        run_case_study, rounds=1, iterations=1
    )

    # 1. published zero-shot listing: all invented fields flagged
    published_flags = {
        d.symbol for d in validate_config(TABLE6_ZEROSHOT).hallucinations()
    }
    for field in TABLE6_FLAGGED_FIELDS:
        assert field in published_flags, f"{field!r} should be flagged"

    # 2. simulated zero-shot hallucinates; few-shot is clean and parseable
    zero_artifact = strip_markdown_chatter(zero_completion)
    zero_flags = {
        d.symbol for d in validate_config(zero_artifact).hallucinations()
    }
    assert zero_flags & set(TABLE6_FLAGGED_FIELDS), zero_flags

    few_artifact = strip_markdown_chatter(few_completion)
    few_report = validate_config(few_artifact)
    assert not few_report.hallucinations(), [
        d.symbol for d in few_report.hallucinations()
    ]
    config = parse_wilkins_yaml(few_artifact)
    assert [t.func for t in config.tasks] == ["producer", "consumer1", "consumer2"]
    assert config.task("producer").nprocs == 3

    # 3. fabricated citation in zero-shot chatter (paper §4.1 footnote)
    assert "wilkins.io" in zero_completion

    lines = [
        "Table 6 case study: o3 Wilkins configuration",
        "",
        f"published zero-shot flags: {sorted(published_flags)}",
        f"simulated zero-shot flags: {sorted(zero_flags)}",
        "",
        "--- simulated zero-shot (with chatter) ---",
        zero_completion,
        "",
        "--- simulated few-shot artifact ---",
        few_artifact,
    ]
    report("table6_case_study", "\n".join(lines))
