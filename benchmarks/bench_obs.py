"""Observability layer — armed-telemetry overhead and span hot-path cost.

Times the :mod:`repro.obs` machinery on two scenario groups:

* ``overhead`` — the cost of *arming* full telemetry: a small Table-1
  configuration sweep run bare vs. under ``tracing()`` + ``metering()``
  (every run opening a trace, every phase recording identified spans,
  run counters published to a live registry), alternating best-of-N so
  machine drift hits both sides equally.  The regression gate caps
  ``obs_over_baseline`` at 1.05: armed telemetry must stay within 5% of
  the bare runner.  The bench also asserts the armed grid is
  bit-identical to the bare one — telemetry must never perturb results;
* ``span_hotpath`` — per-call cost of the shared :func:`repro.obs.span`
  entry point in its three states: disarmed (the zero-cost null span),
  armed-but-idle (a tracer installed, no trace open — must stay on the
  fast path), and tracing (a trace open, every call allocating a
  :class:`SpanRecord`).  Informational: the first two are the numbers
  that ride on *every* run, traced or not.

Timings land in ``benchmarks/output/obs.txt`` (human) and are merged
into ``BENCH_metrics.json`` under the ``obs`` key (machine).  Run after
``bench_metrics_hotpath.py`` (the CI order): the metrics bench rewrites
the file without any previous ``obs`` section.  Set
``REPRO_BENCH_SMOKE=1`` (CI does) for fewer repeats.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro import obs
from repro.core.experiments import run_configuration

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_metrics.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

REPEATS = 3 if SMOKE else 5
SWEEP = dict(models=["o3", "llama-3.3-70b"], systems=["adios2", "wilkins"],
             epochs=2)
UNITS = 8  # 2 models x 2 systems x 2 epochs
SPAN_CALLS = 20_000 if SMOKE else 100_000


def _timed_sweep(armed: bool) -> tuple[float, object]:
    if not armed:
        started = time.perf_counter()
        grid = run_configuration(**SWEEP)
        return time.perf_counter() - started, grid
    with obs.tracing(), obs.metering():
        started = time.perf_counter()
        grid = run_configuration(**SWEEP)
        return time.perf_counter() - started, grid


def _bench_overhead() -> dict:
    _timed_sweep(False)  # warmup: pay imports and calibration once
    baseline_s = armed_s = float("inf")
    bare_grid = armed_grid = None
    for _ in range(REPEATS):  # alternate so drift hits both sides equally
        elapsed, bare_grid = _timed_sweep(False)
        baseline_s = min(baseline_s, elapsed)
        elapsed, armed_grid = _timed_sweep(True)
        armed_s = min(armed_s, elapsed)
    assert armed_grid.cells == bare_grid.cells, (
        "grid produced under armed telemetry diverged from the bare grid"
    )
    return {
        "scenario": "overhead",
        "units": UNITS,
        "repeats": REPEATS,
        "baseline_ms": baseline_s * 1000,
        "armed_ms": armed_s * 1000,
        "obs_over_baseline": armed_s / max(baseline_s, 1e-9),
    }


def _time_span_calls() -> float:
    """Best-of-3 ns per ``span(...)`` enter/exit in the current state."""
    span = obs.span
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(SPAN_CALLS):
            with span("bench"):
                pass
        best = min(best, time.perf_counter() - started)
    return best / SPAN_CALLS * 1e9


def _bench_span_hotpath() -> dict:
    disarmed_ns = _time_span_calls()
    with obs.tracing() as tracer:
        idle_ns = _time_span_calls()  # tracer installed, no trace open
        handle = tracer.begin_trace("bench")
        # cap far above SPAN_CALLS so the tracing path never hits the
        # drop branch and we time real SpanRecord appends
        tracer.max_spans = SPAN_CALLS * 4
        tracing_ns = _time_span_calls()
        tracer.end_trace(handle)
    return {
        "scenario": "span_hotpath",
        "calls": SPAN_CALLS,
        "disarmed_ns_per_call": disarmed_ns,
        "armed_idle_ns_per_call": idle_ns,
        "tracing_ns_per_call": tracing_ns,
    }


def _merge_results(results: list[dict]) -> None:
    """Attach the obs section to BENCH_metrics.json, keeping the rest."""
    payload: dict = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["obs"] = {
        "benchmark": "obs",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def bench_obs(report):
    lines = [
        f"observability layer ({'smoke' if SMOKE else 'full'} mode, "
        f"{UNITS}-unit sweep, best of {REPEATS})",
        "",
    ]

    overhead = _bench_overhead()
    lines.append(
        f"overhead      bare {overhead['baseline_ms']:.1f} ms   "
        f"traced+metered {overhead['armed_ms']:.1f} ms "
        f"(x{overhead['obs_over_baseline']:.3f}, cap 1.05) — "
        "grids bit-identical"
    )

    hotpath = _bench_span_hotpath()
    lines.append(
        f"span hotpath  disarmed {hotpath['disarmed_ns_per_call']:.0f} ns   "
        f"armed-idle {hotpath['armed_idle_ns_per_call']:.0f} ns   "
        f"tracing {hotpath['tracing_ns_per_call']:.0f} ns per call"
    )

    _merge_results([overhead, hotpath])
    lines += ["", f"[machine-readable results merged into {RESULTS_PATH}]"]
    report("obs", "\n".join(lines))

    if not SMOKE:
        # smoke mode (CI) leaves wall-clock gating to check_regression.py's
        # hardware-normalized comparison; full mode asserts locally too
        assert overhead["obs_over_baseline"] <= 1.05, (
            "armed telemetry must stay within 5% of the bare runner, "
            f"got x{overhead['obs_over_baseline']:.3f}"
        )
