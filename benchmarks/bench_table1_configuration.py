"""Table 1 — workflow configuration experiment.

Regenerates the paper's Table 1: 4 models × {ADIOS2, Henson, Wilkins},
5 trials, BLEU + ChrF mean ± stderr, with Overall row/column.  Asserts
the paper's shape claims:

* ADIOS2 is the best-configured system overall; Henson and Wilkins trail
  far behind;
* Gemini-2.5-Pro and Claude-Sonnet-4 lead the overall row;
* Claude's trials are deterministic (stderr 0.0).
"""

from __future__ import annotations

from repro.core.experiments import run_configuration
from repro.data import MODELS, TABLE1
from repro.reporting import compare_with_paper, render_grid_table
from repro.runtime import ThreadedExecutor

EPOCHS = 5


def bench_table1_configuration(benchmark, report):
    # the threaded executor is bit-identical to serial (seeds live in the
    # work units), so the paper-fidelity assertions below are unaffected
    grid = benchmark.pedantic(
        lambda: run_configuration(epochs=EPOCHS, executor=ThreadedExecutor(8)),
        rounds=1, iterations=1,
    )

    lines = [render_grid_table(grid, "Table 1: workflow configuration"), ""]
    for system in grid.row_keys:
        for model in grid.models:
            lines.append(
                compare_with_paper(
                    grid.cell(system, model),
                    TABLE1[(system, model)],
                    f"{system}/{model}",
                )
            )
    report("table1_configuration", "\n".join(lines))

    # --- shape assertions (the paper's claims) -----------------------------
    by_row = grid.overall_by_row()
    assert grid.best_row("bleu") == "adios2"
    assert by_row["adios2"].bleu.mean > by_row["henson"].bleu.mean + 15
    assert by_row["adios2"].bleu.mean > by_row["wilkins"].bleu.mean + 15

    overall = grid.overall_by_model()
    leaders = sorted(MODELS, key=lambda m: overall[m].bleu.mean, reverse=True)[:2]
    assert set(leaders) == {"gemini-2.5-pro", "claude-sonnet-4"}

    for system in grid.row_keys:
        claude = grid.cell(system, "claude-sonnet-4")
        assert claude.bleu.stderr == 0.0, "Claude trials should be deterministic"

    # calibration fidelity: every cell within tolerance of the paper value
    for (system, model), paper in TABLE1.items():
        measured = grid.cell(system, model).bleu.mean
        assert abs(measured - paper.bleu) < 10.0, (system, model, measured, paper.bleu)
