"""Figure 1(b) — prompt-sensitivity heatmaps, task code annotation.

5 prompt variants × 4 models × 4 systems.  Asserts that the annotation
advantage of PyCOMPSs persists across prompt variants (paper §4.4) and
that no variant dominates all models.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiments import run_prompt_sensitivity
from repro.data import FIGURE1B, MODELS, PROMPT_VARIANTS
from repro.reporting import render_figure1


def bench_figure1b_annotation_sensitivity(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_prompt_sensitivity("annotation", epochs=1),
        rounds=1,
        iterations=1,
    )
    report(
        "figure1b_annotation_sensitivity",
        render_figure1(results, "Figure 1(b): BLEU by prompt type — annotation"),
    )

    # PyCOMPSs stays the easiest annotation target across variants for the
    # strong models (o3/Gemini, paper §4.4), averaged over models
    for variant in PROMPT_VARIANTS:
        mean_pycompss = np.mean(
            [results["pycompss"][variant][m] for m in ("o3", "gemini-2.5-pro")]
        )
        mean_henson = np.mean(
            [results["henson"][variant][m] for m in ("o3", "gemini-2.5-pro")]
        )
        assert mean_pycompss > mean_henson, variant

    # no variant dominates every model on every system
    dominating = set(PROMPT_VARIANTS)
    for system in results:
        for model in MODELS:
            best = max(PROMPT_VARIANTS, key=lambda v: results[system][v][model])
            dominating &= {best}
    assert not dominating

    for system, rows in FIGURE1B.items():
        for variant, values in rows.items():
            if variant == "original":
                # the original row is calibrated against Tables 1-3; the
                # paper's own heatmap original-row values differ from its
                # tables (single-run heatmaps vs 5-trial tables)
                continue
            for idx, model in enumerate(MODELS):
                measured = results[system][variant][model]
                assert abs(measured - values[idx]) < 12.0, (
                    system, variant, model, measured, values[idx],
                )
