"""Microbenchmarks for the substrates the evaluation runs on.

These are conventional pytest-benchmark timings (multiple rounds) for
the load-bearing infrastructure: BLEU/ChrF scoring, the simulated-MPI
collectives, the Henson cooperative scheduler, the ADIOS2 SST streaming
path, and a full 3-node Wilkins workflow execution.  They guard against
performance regressions in the harness itself (a full Table 1-3 sweep
runs ~44 cells × 5 trials of everything below).
"""

from __future__ import annotations

import numpy as np

from repro.core.assets import annotated_producer
from repro.metrics import bleu, chrf
from repro.mpi import SUM, mpiexec


def bench_metric_bleu(benchmark):
    hyp = annotated_producer("henson")
    ref = annotated_producer("adios2")
    score = benchmark(lambda: bleu(hyp, ref))
    assert 0.0 <= score <= 100.0


def bench_metric_chrf(benchmark):
    hyp = annotated_producer("henson")
    ref = annotated_producer("adios2")
    score = benchmark(lambda: chrf(hyp, ref))
    assert 0.0 <= score <= 100.0


def bench_mpi_allreduce(benchmark):
    def allreduce_program():
        def prog(comm):
            return comm.allreduce(np.ones(1024), SUM)

        return mpiexec(prog, 4)

    result = benchmark.pedantic(allreduce_program, rounds=5, iterations=1)
    assert float(result[0][0]) == 4.0


def bench_henson_scheduler(benchmark):
    from repro.workflows.henson import HensonRuntime, Puppet
    from repro.workflows.henson import api as henson

    def run_workflow():
        def producer():
            for t in range(20):
                henson.henson_save_int("t", t)
                henson.henson_yield()

        def consumer():
            seen = []
            while henson.henson_active():
                seen.append(henson.henson_load_int("t"))
                henson.henson_yield()
            return seen

        runtime = HensonRuntime(
            [Puppet("producer", producer, driver=True), Puppet("consumer", consumer)]
        )
        return runtime.run()

    results = benchmark.pedantic(run_workflow, rounds=5, iterations=1)
    assert results["consumer"] == list(range(20))


def bench_adios2_sst_stream(benchmark):
    import threading

    from repro.store import SimFilesystem
    from repro.workflows.adios2 import Adios, Mode, StepStatus

    def run_stream():
        fs = SimFilesystem()
        ad = Adios(fs=fs)
        wio = ad.declare_io("W")
        wio.set_engine("SST")
        rio = ad.declare_io("R")
        rio.set_engine("SST")
        payload = np.arange(4096, dtype=np.float64)
        totals = []

        def writer():
            var = wio.define_variable("x", dtype="float64")
            engine = wio.open("stream.bp", Mode.WRITE)
            for _ in range(10):
                engine.begin_step()
                engine.put(var, payload)
                engine.end_step()
            engine.close()

        def reader():
            engine = rio.open("stream.bp", Mode.READ)
            while engine.begin_step() is StepStatus.OK:
                totals.append(float(np.sum(engine.get("x"))))
                engine.end_step()
            engine.close()

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start(); tr.start(); tw.join(); tr.join()
        return totals

    totals = benchmark.pedantic(run_stream, rounds=5, iterations=1)
    assert len(totals) == 10


def bench_wilkins_3node_workflow(benchmark):
    from repro.core.assets import reference_config
    from repro.workflows.wilkins import WilkinsRuntime, parse_wilkins_yaml

    config = parse_wilkins_yaml(reference_config("wilkins"))

    def producer(comm, ctx):
        rng = np.random.default_rng(comm.rank)
        for step in range(3):
            local = rng.random(64)
            gathered = comm.gather(local, root=0)
            if comm.rank == 0:
                ctx.write("grid", np.concatenate(gathered), step=step)
                ctx.write("particles", np.arange(step + 1.0), step=step)
        return "done"

    def consumer1(comm, ctx):
        return [float(np.sum(data)) for _step, data in ctx.steps("grid")]

    def consumer2(comm, ctx):
        return [len(data) for _step, data in ctx.steps("particles")]

    def run_workflow():
        runtime = WilkinsRuntime(
            config,
            {"producer": producer, "consumer1": consumer1, "consumer2": consumer2},
        )
        return runtime.run()

    results = benchmark.pedantic(run_workflow, rounds=5, iterations=1)
    assert results["consumer2"] == [1, 2, 3]
    assert len(results["consumer1"]) == 3
