"""Bench-regression gate: fail CI when the metrics hot path gets slower.

Compares a freshly written ``BENCH_metrics.json`` (produced by
``bench_metrics_hotpath.py``, in CI under ``REPRO_BENCH_SMOKE=1``)
against the committed baseline and exits non-zero if any timing
regresses beyond the threshold (default 2x).

CI runners and developer machines differ in absolute speed, so raw
wall-clock comparisons across machines flake.  The gate therefore
compares **hardware-normalized timings**: each fast-path timing divided
by the naive-baseline timing measured *in the same run on the same
machine* (``quality_curve_ms / naive_quality_curve_ms`` and
``local_recalibrate_ms_per_trial / naive_...``).  A >2x regression in
the normalized cost means the engine genuinely lost ground against the
reference implementation it is measured by, wherever the run happened.
Raw timings are still printed for the log, and ``--strict`` adds an
absolute wall-clock check for same-machine comparisons.

Usage:
    python benchmarks/check_regression.py \\
        [--baseline benchmarks/baseline/metrics_smoke.json] \\
        [--fresh BENCH_metrics.json] [--threshold 2.0] [--strict]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline" / "metrics_smoke.json"
DEFAULT_FRESH = REPO_ROOT / "BENCH_metrics.json"

# (label, fast-timing field, normalizing naive field)
TRACKED = (
    ("quality_curve", "quality_curve_ms", "naive_quality_curve_ms"),
    (
        "local_recalibrate",
        "local_recalibrate_ms_per_trial",
        "naive_local_recalibrate_ms_per_trial",
    ),
)

# merged sections (bench_persist.py / bench_runtime_scaling.py attach these
# under their own payload keys); each scenario normalizes its hot timing by
# a same-run same-machine reference
SECTION_TRACKED: dict[str, dict[str, tuple[tuple[str, str, str], ...]]] = {
    "persist": {
        "sweep": (("warm_vs_cold", "warm_ms", "cold_ms"),),
        "records": (("get_vs_put", "get_ms_per_record", "put_ms_per_record"),),
        "persist_read": (
            ("get_many_vs_get", "get_many_ms_per_record", "get_ms_per_record"),
            ("warm_lru_vs_get", "warm_lru_ms_per_record", "get_ms_per_record"),
        ),
        "mmap_read": (
            (
                "mmap_vs_pread",
                "mmap_get_many_ms_per_record",
                "pread_get_many_ms_per_record",
            ),
        ),
    },
    "scoring": {
        "score_heavy": (("pipelined_vs_serial", "pipelined_ms", "serial_ms"),),
    },
    "faults": {
        "overhead": (("policy_vs_baseline", "policy_ms", "baseline_ms"),),
        **{
            f"fault_rates_{name}": (
                ("rate30_vs_rate0", "rate30_ms", "rate0_ms"),
            )
            for name in ("serial", "threaded", "async")
        },
    },
    "kernels": {
        system: (
            (
                "vectorized_vs_compiled",
                "vectorized_ms_per_hyp",
                "compiled_ms_per_hyp",
            ),
            ("batch_vs_compiled", "batch_ms_per_hyp", "compiled_ms_per_hyp"),
        )
        for system in ("wilkins", "henson")
    },
    "serve": {
        "remote_records": (
            (
                "remote_vs_local",
                "remote_get_many_ms_per_record",
                "local_get_many_ms_per_record",
            ),
        ),
    },
    "obs": {
        "overhead": (("armed_vs_baseline", "armed_ms", "baseline_ms"),),
    },
    "resilience": {
        "overhead": (
            (
                "replicated_vs_bare",
                "replicated_get_ms_per_record",
                "bare_get_ms_per_record",
            ),
        ),
        "failover": (
            (
                "open_breaker_vs_healthy",
                "open_breaker_ms_per_read",
                "healthy_ms_per_read",
            ),
        ),
    },
}

# absolute floors, mode-independent: these are ratios of two same-run
# timings, so they are hardware-normalized by construction.  get_over_put
# regressing past 2x means the offset-indexed read path came undone;
# batch_over_compiled past 0.8 means group-vectorized scoring stopped
# paying for itself (full mode asserts >= 2x, i.e. <= 0.5, in-bench);
# mmap_over_pread past 1.5 means the zero-copy read path went backwards;
# policy_over_baseline past 1.05 means arming the fault-tolerance layer
# costs more than 5% on a healthy run (both timings come from the same
# alternating best-of-N pass, so the ratio is hardware-normalized);
# remote_get_over_local_get past 25x means the networked store's
# pipelined loopback reads lost their batching (measured ~1.3x on an
# idle machine; the cap absorbs CI loopback jitter, while a client that
# stops pipelining or pooling overshoots it by an order of magnitude);
# obs_over_baseline past 1.05 means armed tracing + metering costs more
# than 5% on a run (same alternating best-of-N construction as the
# fault-policy cap, so the ratio is hardware-normalized);
# breaker_over_remote past 1.05 means the armed-but-idle circuit breaker
# costs more than 5% over the bare remote path (alternating best-of-N
# against the same server, so hardware-normalized); and
# open_breaker_over_healthy past 3x means reads with a dead replica's
# breaker open stopped skipping the corpse — the whole point of the
# breaker is that steady-state cost stays near the healthy path.
ABSOLUTE_CAPS: tuple[tuple[str, str, str, float], ...] = (
    ("persist", "records", "get_over_put", 2.0),
    ("faults", "overhead", "policy_over_baseline", 1.05),
    ("persist", "mmap_read", "mmap_over_pread", 1.5),
    ("kernels", "wilkins", "batch_over_compiled", 0.8),
    ("kernels", "wilkins", "vectorized_over_compiled", 1.5),
    ("serve", "remote_records", "remote_get_over_local_get", 25.0),
    ("obs", "overhead", "obs_over_baseline", 1.05),
    ("resilience", "overhead", "breaker_over_remote", 1.05),
    ("resilience", "failover", "open_breaker_over_healthy", 3.0),
)


def load_results(path: pathlib.Path) -> tuple[dict[str, dict], dict]:
    """(results keyed by artifact, full payload) from one metrics file."""
    payload = json.loads(path.read_text())
    return {
        entry["artifact"]: entry for entry in payload.get("results", [])
    }, payload


def compare_entries(
    baseline: dict[str, dict],
    fresh: dict[str, dict],
    tracked_for,
    threshold: float,
    strict: bool,
) -> list[str]:
    """Normalized-timing comparison of one section; returns failure labels."""
    failures: list[str] = []
    for key in sorted(set(fresh) - set(baseline)):
        # symmetric with the vanished-entry case below: a timing the
        # baseline has never seen is ungated, which is exactly when a
        # regression slips in — fail until the baseline is regenerated
        failures.append(
            f"{key} present in fresh run but absent from baseline "
            "(regenerate the baseline to start gating it)"
        )
        print(f"  {key}: absent from baseline [REGRESSED]")
    for key, base in sorted(baseline.items()):
        entry = fresh.get(key)
        if entry is None:
            # a vanished entry is an unmonitored timing, not a pass
            failures.append(f"{key} missing from fresh run")
            print(f"  {key}: missing from fresh run [REGRESSED]")
            continue
        for label, fast_field, naive_field in tracked_for(base):
            missing = [
                f"{role} field {field!r}"
                for role, source in (("baseline", base), ("fresh", entry))
                for field in (fast_field, naive_field)
                if field not in source
            ]
            if missing:
                # name the file and field instead of dying on a KeyError
                failures.append(f"{key}/{label}: {'; '.join(missing)}")
                print(f"  {key}/{label}: {'; '.join(missing)} [REGRESSED]")
                continue
            base_norm = base[fast_field] / max(base[naive_field], 1e-9)
            fresh_norm = entry[fast_field] / max(entry[naive_field], 1e-9)
            ratio = fresh_norm / max(base_norm, 1e-9)
            verdict = "REGRESSED" if ratio > threshold else "ok"
            print(
                f"  {key}/{label}: normalized {base_norm:.4f} -> "
                f"{fresh_norm:.4f} ({ratio:.2f}x, raw "
                f"{base[fast_field]:.2f} -> {entry[fast_field]:.2f} ms) "
                f"[{verdict}]"
            )
            if ratio > threshold:
                failures.append(
                    f"{key}/{label} normalized {ratio:.2f}x > "
                    f"threshold {threshold}x"
                )
            if strict:
                raw_ratio = entry[fast_field] / max(base[fast_field], 1e-9)
                if raw_ratio > threshold:
                    failures.append(
                        f"{key}/{label} raw wall-clock {raw_ratio:.2f}x > "
                        f"threshold {threshold}x"
                    )
    return failures


def check(baseline_path: pathlib.Path, fresh_path: pathlib.Path,
          threshold: float, strict: bool) -> int:
    for path, role in ((baseline_path, "baseline"), (fresh_path, "fresh")):
        if not path.exists():
            print(f"check_regression: missing {role} file {path}", file=sys.stderr)
            return 2
    baseline, base_payload = load_results(baseline_path)
    fresh, fresh_payload = load_results(fresh_path)
    if base_payload.get("smoke") != fresh_payload.get("smoke"):
        print(
            f"check_regression: mode mismatch (baseline smoke="
            f"{base_payload.get('smoke')}, fresh smoke="
            f"{fresh_payload.get('smoke')}); timings are not comparable",
            file=sys.stderr,
        )
        return 2

    failures = compare_entries(
        baseline, fresh, lambda _entry: TRACKED, threshold, strict
    )

    for section, tracked in sorted(SECTION_TRACKED.items()):
        base_section = base_payload.get(section)
        fresh_section = fresh_payload.get(section)
        if base_section is None:
            continue
        if fresh_section is None:
            failures.append(f"{section} section missing from fresh run")
            print(f"  {section}: section missing from fresh run [REGRESSED]")
            continue
        if base_section.get("smoke") != fresh_section.get("smoke"):
            print(
                f"check_regression: {section} mode mismatch (baseline smoke="
                f"{base_section.get('smoke')}, fresh smoke="
                f"{fresh_section.get('smoke')}); timings are not comparable",
                file=sys.stderr,
            )
            return 2
        failures += compare_entries(
            {entry["scenario"]: entry for entry in base_section["results"]},
            {entry["scenario"]: entry for entry in fresh_section["results"]},
            lambda entry, tracked=tracked: tracked.get(
                entry.get("scenario"), ()
            ),
            threshold,
            strict,
        )

    for section, scenario, field, cap in ABSOLUTE_CAPS:
        entries = {
            entry["scenario"]: entry
            for entry in (fresh_payload.get(section) or {}).get("results", [])
        }
        entry = entries.get(scenario)
        value = entry.get(field) if entry is not None else None
        if value is None:
            failures.append(f"{section}/{scenario}/{field} missing from fresh run")
            print(
                f"  {section}/{scenario}/{field}: missing from fresh run "
                "[REGRESSED]"
            )
            continue
        verdict = "REGRESSED" if value > cap else "ok"
        # three decimals: tight caps like 1.05 would otherwise print a
        # failing 1.054 as "1.05 > cap 1.05"
        print(
            f"  {section}/{scenario}/{field}: {value:.3f} (cap {cap}) "
            f"[{verdict}]"
        )
        if value > cap:
            failures.append(
                f"{section}/{scenario}/{field} measured {value:.3f} > cap {cap}"
            )

    if failures:
        print(
            f"check_regression: {len(failures)} timing(s) regressed more "
            f"than {threshold}x vs {baseline_path.name}:", file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"check_regression: no timing regressed more than {threshold}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--fresh", type=pathlib.Path, default=DEFAULT_FRESH)
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument(
        "--strict", action="store_true",
        help="also gate on raw wall-clock (same-machine comparisons only)",
    )
    args = parser.parse_args(argv)
    return check(args.baseline, args.fresh, args.threshold, args.strict)


if __name__ == "__main__":
    sys.exit(main())
