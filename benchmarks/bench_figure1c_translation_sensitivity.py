"""Figure 1(c) — prompt-sensitivity heatmaps, task code translation.

5 prompt variants × 4 models × 4 directions.  Asserts that the
direction-difficulty ordering (→ADIOS2 over →Henson, →PyCOMPSs over
→Parsl) persists across prompt variants on average.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiments import run_prompt_sensitivity
from repro.data import FIGURE1C, MODELS, PROMPT_VARIANTS
from repro.reporting import render_figure1


def bench_figure1c_translation_sensitivity(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_prompt_sensitivity("translation", epochs=1),
        rounds=1,
        iterations=1,
    )
    report(
        "figure1c_translation_sensitivity",
        render_figure1(results, "Figure 1(c): BLEU by prompt type — translation"),
    )

    def variant_mean(direction, variant):
        return float(np.mean([results[direction][variant][m] for m in MODELS]))

    easier_count = sum(
        variant_mean(("henson", "adios2"), v) > variant_mean(("adios2", "henson"), v)
        for v in PROMPT_VARIANTS
    )
    assert easier_count >= 4, "→ADIOS2 should beat →Henson for most variants"

    easier_count = sum(
        variant_mean(("parsl", "pycompss"), v) > variant_mean(("pycompss", "parsl"), v)
        for v in PROMPT_VARIANTS
    )
    assert easier_count >= 4, "→PyCOMPSs should beat →Parsl for most variants"

    for direction, rows in FIGURE1C.items():
        for variant, values in rows.items():
            if variant == "original":
                # the original row is calibrated against Tables 1-3; the
                # paper's own heatmap original-row values differ from its
                # tables (single-run heatmaps vs 5-trial tables)
                continue
            for idx, model in enumerate(MODELS):
                measured = results[direction][variant][model]
                assert abs(measured - values[idx]) < 12.0, (
                    direction, variant, model, measured, values[idx],
                )
