"""Table 4 — ADIOS2→Henson translation case study (LLaMA vs Gemini).

Two deterministic checks:

1. the Henson validator, run on the *published* Table 4 listings, flags
   exactly the symbols the paper marks in red (LLaMA's ADIOS2-shaped API;
   Gemini's hallucinated init/data-handle/finalize calls while its
   ``henson_save``-family exchange and ``henson_yield`` are recognized);
2. our simulated LLaMA and Gemini, asked for the same translation,
   produce artifacts whose hallucination profile matches the paper's
   qualitative description (LLaMA transplants ADIOS2 step calls; Gemini
   keeps ``henson_yield``).
"""

from __future__ import annotations

from repro.data.case_studies import (
    TABLE4_GEMINI,
    TABLE4_GEMINI_FLAGGED,
    TABLE4_LLAMA,
    TABLE4_LLAMA_FLAGGED,
)
from repro.llm import GenerateConfig, get_model
from repro.utils.text import strip_markdown_chatter
from repro.workflows.henson import validate_task_code

_PROMPT = (
    "Task codes are provided below for the ADIOS2 workflow system for a "
    "2-node workflow. Your task is to translate these codes to use the "
    "Henson system.\n\n{code}"
)


def _flagged(text: str) -> set[str]:
    return {
        d.symbol
        for d in validate_task_code(text).hallucinations()
        if d.symbol and d.symbol.startswith("henson")
    }


def bench_table4_case_study(benchmark, report):
    from repro.core.assets import annotated_producer

    def run_case_study():
        prompt = _PROMPT.format(code=annotated_producer("adios2"))
        out = {}
        for model in ("llama-3.3-70b", "gemini-2.5-pro"):
            completion = get_model(f"sim/{model}").generate(
                prompt, GenerateConfig(seed=0)
            )
            out[model] = strip_markdown_chatter(completion.completion)
        return out

    generated = benchmark.pedantic(run_case_study, rounds=1, iterations=1)

    # 1. published listings: validator matches the paper's red marks
    llama_flags = _flagged(TABLE4_LLAMA)
    gemini_flags = _flagged(TABLE4_GEMINI)
    assert llama_flags == set(TABLE4_LLAMA_FLAGGED), llama_flags
    assert gemini_flags == set(TABLE4_GEMINI_FLAGGED), gemini_flags
    # the paper notes Gemini's exchange/yield calls are *correct*:
    assert "henson_yield" not in gemini_flags
    assert "henson_active" not in gemini_flags

    # 2. simulated generations exhibit the same qualitative profile
    sim_llama_flags = _flagged(generated["llama-3.3-70b"])
    assert sim_llama_flags & {"henson_put_var", "henson_begin_step", "henson_end_step"}, (
        "simulated LLaMA should transplant ADIOS2-shaped calls"
    )
    assert "henson_yield" in generated["gemini-2.5-pro"]

    lines = ["Table 4 case study: ADIOS2 -> Henson translations", ""]
    lines.append(f"published LLaMA listing, flagged: {sorted(llama_flags)}")
    lines.append(f"published Gemini listing, flagged: {sorted(gemini_flags)}")
    lines.append(
        f"simulated LLaMA, flagged: {sorted(sim_llama_flags)}"
    )
    lines.append(
        f"simulated Gemini, flagged: {sorted(_flagged(generated['gemini-2.5-pro']))}"
    )
    lines += ["", "--- simulated LLaMA translation ---", generated["llama-3.3-70b"]]
    lines += ["", "--- simulated Gemini translation ---", generated["gemini-2.5-pro"]]
    report("table4_case_study", "\n".join(lines))
