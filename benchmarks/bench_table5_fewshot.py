"""Table 5 — few-shot vs zero-shot prompting for workflow configuration.

Regenerates the paper's Table 5 (scores averaged over the three
configuration systems) and asserts its claims:

* few-shot prompting improves every model, by a large margin (the paper
  goes from ~34-45 BLEU zero-shot to ~84-92 few-shot);
* Claude-Sonnet-4 attains the highest few-shot scores;
* few-shot artifacts stop hallucinating schema fields (validated by the
  Wilkins validator on the generated configs).
"""

from __future__ import annotations

from repro.core.experiments import run_fewshot
from repro.core.experiments.configuration import configuration_task
from repro.core.task import evaluate
from repro.data import MODELS, TABLE5
from repro.reporting import render_fewshot_table
from repro.workflows.wilkins import validate_config

EPOCHS = 5


def bench_table5_fewshot(benchmark, report):
    comparison = benchmark.pedantic(
        lambda: run_fewshot(epochs=EPOCHS), rounds=1, iterations=1
    )

    lines = [
        render_fewshot_table(
            comparison, "Table 5: few-shot vs zero-shot (configuration)"
        ),
        "",
    ]
    for model in MODELS:
        zero = comparison.zero_shot[model]
        few = comparison.few_shot[model]
        paper_zero = TABLE5[model]["zero-shot"]
        paper_few = TABLE5[model]["few-shot"]
        lines.append(
            f"{model}: zero paper {paper_zero.bleu:.1f} / measured "
            f"{zero.bleu.render()}; few paper {paper_few.bleu:.1f} / "
            f"measured {few.bleu.render()} (gain {comparison.gain(model):+.1f})"
        )
    report("table5_fewshot", "\n".join(lines))

    # --- shape assertions ---------------------------------------------------
    for model in MODELS:
        assert comparison.gain(model) > 30.0, f"{model} should gain from few-shot"
    best_few = max(
        MODELS, key=lambda m: comparison.few_shot[m].bleu.mean
    )
    assert best_few == "claude-sonnet-4"

    # few-shot artifacts should validate cleanly (no invented fields)
    task = configuration_task("wilkins", fewshot=True)
    result = evaluate(task, "sim/o3", epochs=1)
    artifact = result.samples[0].scores[0].answer
    hallucinated = validate_config(artifact).hallucinations()
    assert not hallucinated, [d.symbol for d in hallucinated]
