"""Runtime scaling — executors, schedulers and result cache on a fixed sweep.

Times the Table 1-shaped sweep (4 models × 3 systems × 2 epochs = 24
generations) under every executor, twice over:

* a **cold-cache serial sweep** against freshly constructed simulated
  models, so the timing includes per-cell calibration — the number the
  compiled-metrics engine is measured by (reported for the perf
  trajectory);
* against the **offline simulator** (CPU-bound; threads mostly overlap
  its numpy sections under the GIL, so gains are modest) — reported for
  the perf trajectory, not asserted;
* against a **latency provider** that wraps each simulated model with a
  fixed per-call delay, the regime a real API endpoint lives in — here
  the threaded executor must be ≥ 2× faster than serial, and the async
  executor must be at least as fast as the threaded one (event-loop
  concurrency is a cheap integer, so it runs more calls in flight than
  a same-cost thread pool); the batched executor pays the provider
  round-trip once per *model group* instead of once per call;
* and with a **warm result cache**, which must skip the model layer
  entirely (zero new generations) while producing identical results.

A section compares plan-order dispatch against the adaptive
longest-expected-unit-first scheduler on a heterogeneous-latency sweep
(one slow provider, three fast ones) — the regime where dispatch order
shapes the makespan tail.

The final **scoring** section times a *score-heavy* sweep — ~30 KiB
targets so BLEU/ChrF cost about as much as the provider's simulated
round trip — serially and then pipelined through a
:class:`~repro.runtime.scoring.ScoringPool`: completed units stream
into a scorer process while the run thread is already waiting on the
next provider call, so metric work hides inside generation latency
(and, on multi-core hosts, parallelizes across workers on top).  The
pipelined pass must be ≥ 1.5× faster (asserted in full mode; smoke
mode is report-only) and the ratio is merged into
``BENCH_metrics.json`` under the ``scoring`` key for the CI
regression gate.

Numbers land in ``benchmarks/output/runtime_scaling.txt`` so future PRs
have a perf trajectory to compare against.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.assets import reference_config
from repro.core.experiments.configuration import (
    CONFIGURATION_SYSTEMS,
    configuration_task,
)
from repro.core.samples import Sample
from repro.core.task import Task
from repro.data import MODELS
from repro.llm.api import get_model, register_model
from repro.llm.types import ModelOutput, ModelUsage
from repro.runtime import (
    AdaptiveScheduler,
    AsyncExecutor,
    BatchingExecutor,
    InMemoryResultCache,
    MpiShardExecutor,
    Plan,
    ScoringPool,
    SerialExecutor,
    ThreadedExecutor,
    run,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_metrics.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

EPOCHS = 2
API_LATENCY_S = 0.15  # per-call delay of the simulated network endpoint
SLOW_MODEL_LATENCY_S = 0.6  # the straggler provider of the hetero sweep
FAST_MODEL_LATENCY_S = 0.02

SCORE_SAMPLES = 4 if SMOKE else 8  # score-heavy sweep width
SCORE_EPOCHS = 2
SCORE_TARGET_REPEATS = 8 if SMOKE else 24  # target size multiplier
SCORE_LATENCY_S = 0.015 if SMOKE else 0.045  # provider round trip per call
SCORE_WORKERS = 1


class _LatencyProvider:
    """A simulated-model wrapper that costs a fixed delay per call.

    The batched entry point pays the delay **once per batch** — the
    whole point of a real batch endpoint is amortizing the round-trip —
    then defers to the inner model's native ``generate_batch``.
    """

    def __init__(self, inner, delay: float, namespace: str = "apisim") -> None:
        self._inner = inner
        self._delay = delay
        self.name = f"{namespace}/{inner.name.split('/', 1)[1]}"

    def generate(self, messages, config):
        time.sleep(self._delay)
        return self._inner.generate(messages, config)

    def generate_batch(self, requests):
        time.sleep(self._delay)  # one round-trip for the whole group
        return self._inner.generate_batch(requests)


def _register_latency_models() -> None:
    for model in MODELS:
        inner = get_model(f"sim/{model}").provider
        register_model(
            f"apisim/{model}",
            lambda inner=inner: _LatencyProvider(inner, API_LATENCY_S),
        )


def _register_hetero_models() -> None:
    """One slow provider (o3) among three fast ones."""
    for model in MODELS:
        inner = get_model(f"sim/{model}").provider
        delay = SLOW_MODEL_LATENCY_S if model == "o3" else FAST_MODEL_LATENCY_S
        register_model(
            f"hetsim/{model}",
            lambda inner=inner, delay=delay: _LatencyProvider(
                inner, delay, namespace="hetsim"
            ),
        )


def _register_cold_models() -> None:
    """Fresh SimulatedModel instances: nothing calibrated, nothing compiled."""
    from repro.llm.profiles import ALL_PROFILES
    from repro.llm.simulated import SimulatedModel

    for model in MODELS:
        register_model(
            f"coldsim/{model}",
            lambda m=model: SimulatedModel(ALL_PROFILES[m]()),
        )


class _ScoreHeavyProvider:
    """A latency-bound provider whose outputs are expensive to score.

    Each call sleeps ``SCORE_LATENCY_S`` (the simulated API round trip)
    and returns the prompt with every ``(7 + seed)``-th token dropped —
    a deterministic ~30 KiB completion whose BLEU/ChrF cost is of the
    same order as the round trip.  That is exactly the regime pipelined
    scoring targets: while the run thread waits on the next call, the
    scorer process grinds through the previous completions, even on a
    single-core host.
    """

    name = "scoreheavy/echo"

    def generate(self, messages, config):
        time.sleep(SCORE_LATENCY_S)
        prompt = messages[-1].content
        step = 7 + (config.seed or 0)
        tokens = prompt.split(" ")
        completion = " ".join(
            tok for i, tok in enumerate(tokens) if (i + 1) % step
        )
        return ModelOutput(
            model=self.name,
            completion=completion,
            usage=ModelUsage(
                input_tokens=len(tokens), output_tokens=len(tokens)
            ),
        )


def _score_heavy_plan(tag: str) -> Plan:
    """SCORE_SAMPLES distinct big-target samples × SCORE_EPOCHS epochs."""
    register_model("scoreheavy/echo", _ScoreHeavyProvider)
    base = "\n".join(reference_config(s) for s in CONFIGURATION_SYSTEMS)
    samples = []
    for i in range(SCORE_SAMPLES):
        body = f"# sample {i}\n" + base * SCORE_TARGET_REPEATS
        samples.append(Sample(id=f"scoreheavy/{i}", input=body, target=body))
    task = Task(name=f"scoreheavy/{tag}", dataset=samples)
    plan = Plan(f"scaling/scoreheavy/{tag}")
    plan.add_eval(task, "scoreheavy/echo", epochs=SCORE_EPOCHS)
    return plan


def _merge_scoring_results(results: list[dict]) -> None:
    """Attach the scoring section to BENCH_metrics.json, keeping the rest."""
    payload: dict = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["scoring"] = {
        "benchmark": "scoring",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _sweep_plan(namespace: str, models=MODELS) -> Plan:
    plan = Plan(f"scaling/{namespace}")
    for system in CONFIGURATION_SYSTEMS:
        task = configuration_task(system)
        for model in models:
            plan.add_eval(task, f"{namespace}/{model}", epochs=EPOCHS)
    return plan


def _timed(namespace: str, executor, cache=None, scheduler=None, models=MODELS):
    plan = _sweep_plan(namespace, models=models)
    started = time.perf_counter()
    outcome = run(plan, executor=executor, cache=cache, scheduler=scheduler)
    return time.perf_counter() - started, outcome


def bench_runtime_scaling(report):
    _register_latency_models()
    # cold-cache serial sweep: freshly registered models, so the timing
    # includes every per-cell calibration (the metrics-engine hot path)
    _register_cold_models()
    cold_serial_time, _ = _timed("coldsim", SerialExecutor())

    # warm the per-cell calibration caches so every timing below measures
    # steady-state generation, not one-off calibration
    run(_sweep_plan("sim"))

    executors = [
        ("serial", SerialExecutor()),
        ("threads-8", ThreadedExecutor(8)),
        ("mpi-4", MpiShardExecutor(4)),
        ("async-16", AsyncExecutor(16)),
        ("batched", BatchingExecutor(4)),
    ]

    lines = [
        "runtime scaling — 4 models x 3 systems x 2 epochs (24 generations)",
        f"simulated API latency: {API_LATENCY_S * 1000:.0f} ms/call "
        "(batched: one per model group)",
        f"cold-cache serial sweep (incl. calibration): "
        f"{cold_serial_time * 1000:.0f} ms",
        "",
        f"{'executor':<12} {'sim (CPU-bound)':>16} {'apisim (latency)':>17} "
        f"{'apisim warm cache':>18}",
    ]
    sim_times: dict[str, float] = {}
    api_times: dict[str, float] = {}
    baseline_results = None
    for label, executor in executors:
        sim_times[label], _ = _timed("sim", executor)

        cache = InMemoryResultCache()
        api_times[label], cold = _timed("apisim", executor, cache=cache)
        warm_time, warm = _timed("apisim", executor, cache=cache)

        assert cold.stats.generated == 24 - cold.stats.deduplicated
        assert warm.stats.generated == 0, "warm cache must skip the model layer"
        assert warm.stats.cache_hits == warm.stats.total_units - warm.stats.deduplicated
        scores = sorted(
            (uid, r.score["bleu"]) for uid, r in warm.results.items()
        )
        if baseline_results is None:
            baseline_results = scores
        else:
            assert scores == baseline_results, (
                f"{label} results differ from serial"
            )

        lines.append(
            f"{label:<12} {sim_times[label] * 1000:>13.0f} ms "
            f"{api_times[label] * 1000:>14.0f} ms {warm_time * 1000:>15.0f} ms"
        )

    threaded_speedup = api_times["serial"] / api_times["threads-8"]
    mpi_speedup = api_times["serial"] / api_times["mpi-4"]
    async_speedup = api_times["serial"] / api_times["async-16"]
    batched_speedup = api_times["serial"] / api_times["batched"]
    lines += [
        "",
        f"latency-bound speedup vs serial: threads-8 {threaded_speedup:.1f}x, "
        f"mpi-4 {mpi_speedup:.1f}x, async-16 {async_speedup:.1f}x, "
        f"batched {batched_speedup:.1f}x",
        f"CPU-bound (GIL) speedup vs serial: threads-8 "
        f"{sim_times['serial'] / sim_times['threads-8']:.1f}x, mpi-4 "
        f"{sim_times['serial'] / sim_times['mpi-4']:.1f}x",
    ]

    # adaptive scheduling: a straggler provider among fast ones; the
    # longest-expected-first order is learned online, so the first
    # adaptive run doubles as training and the second one is measured
    _register_hetero_models()
    hetero_models = [m for m in MODELS if m != "o3"] + ["o3"]  # straggler last
    plan_time, _ = _timed(
        "hetsim", ThreadedExecutor(4), models=hetero_models
    )
    scheduler = AdaptiveScheduler()
    _timed("hetsim", ThreadedExecutor(4), scheduler=scheduler,
           models=hetero_models)  # training pass
    adaptive_time, _ = _timed(
        "hetsim", ThreadedExecutor(4), scheduler=scheduler,
        models=hetero_models,
    )
    lines += [
        "",
        "adaptive scheduling — hetero latency "
        f"(o3 {SLOW_MODEL_LATENCY_S * 1000:.0f} ms/call, others "
        f"{FAST_MODEL_LATENCY_S * 1000:.0f} ms/call), threads-4:",
        f"  plan order:      {plan_time * 1000:>6.0f} ms",
        f"  adaptive (LPT):  {adaptive_time * 1000:>6.0f} ms "
        "(longest-expected-unit first, cost model trained online)",
    ]

    # pipelined scoring: a score-heavy sweep (near-free generation, big
    # targets) serially vs. streamed through a process pool of scorers
    units = SCORE_SAMPLES * SCORE_EPOCHS
    started = time.perf_counter()
    serial_outcome = run(_score_heavy_plan("serial"))
    scoring_serial_s = time.perf_counter() - started
    with ScoringPool(max_workers=SCORE_WORKERS) as scoring_pool:
        scoring_pool.warm()  # pay process start-up outside the timing
        started = time.perf_counter()
        pipelined_outcome = run(_score_heavy_plan("pipelined"), scoring=scoring_pool)
        scoring_pipelined_s = time.perf_counter() - started
    assert serial_outcome.stats.scores_computed == units
    assert pipelined_outcome.stats.scores_computed == units
    serial_scores = sorted(
        (uid.rsplit("/", 1)[-1], r.score["bleu"], r.score["chrf"])
        for uid, r in serial_outcome.results.items()
    )
    pipelined_scores = sorted(
        (uid.rsplit("/", 1)[-1], r.score["bleu"], r.score["chrf"])
        for uid, r in pipelined_outcome.results.items()
    )
    assert serial_scores == pipelined_scores, (
        "process-pool scoring must be bit-identical to inline scoring"
    )
    scoring_speedup = scoring_serial_s / max(scoring_pipelined_s, 1e-9)
    lines += [
        "",
        f"pipelined scoring — score-heavy sweep ({units} units, "
        f"~{SCORE_TARGET_REPEATS * 1.3:.0f} KiB targets, "
        f"{SCORE_LATENCY_S * 1000:.0f} ms provider round trip, "
        f"{SCORE_WORKERS} scorer processes):",
        f"  serial scoring:     {scoring_serial_s * 1000:>6.0f} ms "
        "(every score on the run thread, after its generation)",
        f"  pipelined scoring:  {scoring_pipelined_s * 1000:>6.0f} ms "
        f"({scoring_speedup:.1f}x, scores overlap generation latency; "
        "grids bit-identical)",
    ]
    _merge_scoring_results([
        {
            "scenario": "score_heavy",
            "units": units,
            "workers": SCORE_WORKERS,
            "serial_ms": scoring_serial_s * 1000,
            "pipelined_ms": scoring_pipelined_s * 1000,
            "pipelined_over_serial": scoring_pipelined_s
            / max(scoring_serial_s, 1e-9),
        }
    ])
    lines += ["", f"[scoring section merged into {RESULTS_PATH}]"]
    report("runtime_scaling", "\n".join(lines))

    if not SMOKE:
        # smoke mode (CI) is report-only for wall-clock ratios on shared
        # runners; the regression gate compares the normalized ratio
        assert scoring_speedup >= 1.5, (
            f"pipelined scoring should be >= 1.5x faster than serial "
            f"scoring on a score-heavy sweep, got {scoring_speedup:.2f}x"
        )

    assert threaded_speedup >= 2.0, (
        f"threaded executor should be >= 2x faster than serial on a "
        f"latency-bound sweep, got {threaded_speedup:.2f}x"
    )
    assert api_times["async-16"] <= api_times["threads-8"] * 1.05, (
        f"async executor should match or beat the threaded executor on a "
        f"latency-bound sweep, got async {api_times['async-16'] * 1000:.0f} ms "
        f"vs threaded {api_times['threads-8'] * 1000:.0f} ms"
    )
    assert batched_speedup >= 2.0, (
        f"batched generation should be >= 2x faster than serial on a "
        f"latency-bound sweep, got {batched_speedup:.2f}x"
    )
