"""Runtime scaling — executors, schedulers and result cache on a fixed sweep.

Times the Table 1-shaped sweep (4 models × 3 systems × 2 epochs = 24
generations) under every executor, twice over:

* a **cold-cache serial sweep** against freshly constructed simulated
  models, so the timing includes per-cell calibration — the number the
  compiled-metrics engine is measured by (reported for the perf
  trajectory);
* against the **offline simulator** (CPU-bound; threads mostly overlap
  its numpy sections under the GIL, so gains are modest) — reported for
  the perf trajectory, not asserted;
* against a **latency provider** that wraps each simulated model with a
  fixed per-call delay, the regime a real API endpoint lives in — here
  the threaded executor must be ≥ 2× faster than serial, and the async
  executor must be at least as fast as the threaded one (event-loop
  concurrency is a cheap integer, so it runs more calls in flight than
  a same-cost thread pool); the batched executor pays the provider
  round-trip once per *model group* instead of once per call;
* and with a **warm result cache**, which must skip the model layer
  entirely (zero new generations) while producing identical results.

A final section compares plan-order dispatch against the adaptive
longest-expected-unit-first scheduler on a heterogeneous-latency sweep
(one slow provider, three fast ones) — the regime where dispatch order
shapes the makespan tail.

Numbers land in ``benchmarks/output/runtime_scaling.txt`` so future PRs
have a perf trajectory to compare against.
"""

from __future__ import annotations

import time

from repro.core.experiments.configuration import (
    CONFIGURATION_SYSTEMS,
    configuration_task,
)
from repro.data import MODELS
from repro.llm.api import get_model, register_model
from repro.runtime import (
    AdaptiveScheduler,
    AsyncExecutor,
    BatchingExecutor,
    InMemoryResultCache,
    MpiShardExecutor,
    Plan,
    SerialExecutor,
    ThreadedExecutor,
    run,
)

EPOCHS = 2
API_LATENCY_S = 0.15  # per-call delay of the simulated network endpoint
SLOW_MODEL_LATENCY_S = 0.6  # the straggler provider of the hetero sweep
FAST_MODEL_LATENCY_S = 0.02


class _LatencyProvider:
    """A simulated-model wrapper that costs a fixed delay per call.

    The batched entry point pays the delay **once per batch** — the
    whole point of a real batch endpoint is amortizing the round-trip —
    then defers to the inner model's native ``generate_batch``.
    """

    def __init__(self, inner, delay: float, namespace: str = "apisim") -> None:
        self._inner = inner
        self._delay = delay
        self.name = f"{namespace}/{inner.name.split('/', 1)[1]}"

    def generate(self, messages, config):
        time.sleep(self._delay)
        return self._inner.generate(messages, config)

    def generate_batch(self, requests):
        time.sleep(self._delay)  # one round-trip for the whole group
        return self._inner.generate_batch(requests)


def _register_latency_models() -> None:
    for model in MODELS:
        inner = get_model(f"sim/{model}").provider
        register_model(
            f"apisim/{model}",
            lambda inner=inner: _LatencyProvider(inner, API_LATENCY_S),
        )


def _register_hetero_models() -> None:
    """One slow provider (o3) among three fast ones."""
    for model in MODELS:
        inner = get_model(f"sim/{model}").provider
        delay = SLOW_MODEL_LATENCY_S if model == "o3" else FAST_MODEL_LATENCY_S
        register_model(
            f"hetsim/{model}",
            lambda inner=inner, delay=delay: _LatencyProvider(
                inner, delay, namespace="hetsim"
            ),
        )


def _register_cold_models() -> None:
    """Fresh SimulatedModel instances: nothing calibrated, nothing compiled."""
    from repro.llm.profiles import ALL_PROFILES
    from repro.llm.simulated import SimulatedModel

    for model in MODELS:
        register_model(
            f"coldsim/{model}",
            lambda m=model: SimulatedModel(ALL_PROFILES[m]()),
        )


def _sweep_plan(namespace: str, models=MODELS) -> Plan:
    plan = Plan(f"scaling/{namespace}")
    for system in CONFIGURATION_SYSTEMS:
        task = configuration_task(system)
        for model in models:
            plan.add_eval(task, f"{namespace}/{model}", epochs=EPOCHS)
    return plan


def _timed(namespace: str, executor, cache=None, scheduler=None, models=MODELS):
    plan = _sweep_plan(namespace, models=models)
    started = time.perf_counter()
    outcome = run(plan, executor=executor, cache=cache, scheduler=scheduler)
    return time.perf_counter() - started, outcome


def bench_runtime_scaling(report):
    _register_latency_models()
    # cold-cache serial sweep: freshly registered models, so the timing
    # includes every per-cell calibration (the metrics-engine hot path)
    _register_cold_models()
    cold_serial_time, _ = _timed("coldsim", SerialExecutor())

    # warm the per-cell calibration caches so every timing below measures
    # steady-state generation, not one-off calibration
    run(_sweep_plan("sim"))

    executors = [
        ("serial", SerialExecutor()),
        ("threads-8", ThreadedExecutor(8)),
        ("mpi-4", MpiShardExecutor(4)),
        ("async-16", AsyncExecutor(16)),
        ("batched", BatchingExecutor(4)),
    ]

    lines = [
        "runtime scaling — 4 models x 3 systems x 2 epochs (24 generations)",
        f"simulated API latency: {API_LATENCY_S * 1000:.0f} ms/call "
        "(batched: one per model group)",
        f"cold-cache serial sweep (incl. calibration): "
        f"{cold_serial_time * 1000:.0f} ms",
        "",
        f"{'executor':<12} {'sim (CPU-bound)':>16} {'apisim (latency)':>17} "
        f"{'apisim warm cache':>18}",
    ]
    sim_times: dict[str, float] = {}
    api_times: dict[str, float] = {}
    baseline_results = None
    for label, executor in executors:
        sim_times[label], _ = _timed("sim", executor)

        cache = InMemoryResultCache()
        api_times[label], cold = _timed("apisim", executor, cache=cache)
        warm_time, warm = _timed("apisim", executor, cache=cache)

        assert cold.stats.generated == 24 - cold.stats.deduplicated
        assert warm.stats.generated == 0, "warm cache must skip the model layer"
        assert warm.stats.cache_hits == warm.stats.total_units - warm.stats.deduplicated
        scores = sorted(
            (uid, r.score["bleu"]) for uid, r in warm.results.items()
        )
        if baseline_results is None:
            baseline_results = scores
        else:
            assert scores == baseline_results, (
                f"{label} results differ from serial"
            )

        lines.append(
            f"{label:<12} {sim_times[label] * 1000:>13.0f} ms "
            f"{api_times[label] * 1000:>14.0f} ms {warm_time * 1000:>15.0f} ms"
        )

    threaded_speedup = api_times["serial"] / api_times["threads-8"]
    mpi_speedup = api_times["serial"] / api_times["mpi-4"]
    async_speedup = api_times["serial"] / api_times["async-16"]
    batched_speedup = api_times["serial"] / api_times["batched"]
    lines += [
        "",
        f"latency-bound speedup vs serial: threads-8 {threaded_speedup:.1f}x, "
        f"mpi-4 {mpi_speedup:.1f}x, async-16 {async_speedup:.1f}x, "
        f"batched {batched_speedup:.1f}x",
        f"CPU-bound (GIL) speedup vs serial: threads-8 "
        f"{sim_times['serial'] / sim_times['threads-8']:.1f}x, mpi-4 "
        f"{sim_times['serial'] / sim_times['mpi-4']:.1f}x",
    ]

    # adaptive scheduling: a straggler provider among fast ones; the
    # longest-expected-first order is learned online, so the first
    # adaptive run doubles as training and the second one is measured
    _register_hetero_models()
    hetero_models = [m for m in MODELS if m != "o3"] + ["o3"]  # straggler last
    plan_time, _ = _timed(
        "hetsim", ThreadedExecutor(4), models=hetero_models
    )
    scheduler = AdaptiveScheduler()
    _timed("hetsim", ThreadedExecutor(4), scheduler=scheduler,
           models=hetero_models)  # training pass
    adaptive_time, _ = _timed(
        "hetsim", ThreadedExecutor(4), scheduler=scheduler,
        models=hetero_models,
    )
    lines += [
        "",
        "adaptive scheduling — hetero latency "
        f"(o3 {SLOW_MODEL_LATENCY_S * 1000:.0f} ms/call, others "
        f"{FAST_MODEL_LATENCY_S * 1000:.0f} ms/call), threads-4:",
        f"  plan order:      {plan_time * 1000:>6.0f} ms",
        f"  adaptive (LPT):  {adaptive_time * 1000:>6.0f} ms "
        "(longest-expected-unit first, cost model trained online)",
    ]
    report("runtime_scaling", "\n".join(lines))

    assert threaded_speedup >= 2.0, (
        f"threaded executor should be >= 2x faster than serial on a "
        f"latency-bound sweep, got {threaded_speedup:.2f}x"
    )
    assert api_times["async-16"] <= api_times["threads-8"] * 1.05, (
        f"async executor should match or beat the threaded executor on a "
        f"latency-bound sweep, got async {api_times['async-16'] * 1000:.0f} ms "
        f"vs threaded {api_times['threads-8'] * 1000:.0f} ms"
    )
    assert batched_speedup >= 2.0, (
        f"batched generation should be >= 2x faster than serial on a "
        f"latency-bound sweep, got {batched_speedup:.2f}x"
    )
