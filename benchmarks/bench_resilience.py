"""Resilience layer — what the breaker costs when nothing is failing.

The circuit breaker's whole bargain is "pay a lookup per request,
save a connect timeout per outage".  This bench prices both halves
against real servers (the :class:`repro.testing.InProcessServer`
harness on loopback TCP):

* ``overhead`` — the same batched ``get_generations`` through a
  single-replica :class:`ReplicatedRunStore` (breaker armed, hedging
  and spill off) and through the bare :class:`RemoteRunStore` it
  wraps, alternating best-of-N.  ``breaker_over_remote`` is the
  armed-but-idle toll; the regression gate caps it at 1.05x — the
  resilience layer must be free when replicas are healthy;
* ``failover`` — two replicas, then the preferred one dies.
  ``failover_ms`` is the one-off price of discovering the corpse
  (retries + breaker trip); ``open_breaker_ms_per_read`` is the
  steady-state read cost afterwards, which the open breaker should
  hold near the healthy-path cost (``open_breaker_over_healthy``,
  capped generously — it routes straight to the survivor).

Results land in ``benchmarks/output/resilience.txt`` (human) and merge
into ``BENCH_metrics.json`` under the ``resilience`` key (machine),
gated by ``check_regression.py``.  ``REPRO_BENCH_SMOKE=1`` shrinks the
record counts for CI.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.llm.types import ModelUsage
from repro.runtime import RetryPolicy
from repro.runtime.units import Generation
from repro.serve import ReplicatedRunStore, open_store
from repro.testing import InProcessServer

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_metrics.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_RECORDS = 192 if SMOKE else 1024
N_ROUNDS = 5
N_OPEN_READS = 20 if SMOKE else 100

RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05)


def _synthetic_generation(i: int) -> Generation:
    return Generation(
        key=f"{i:064x}",
        model="sim/bench",
        completion=f"synthetic completion {i} " + "x" * 160,
        usage=ModelUsage(input_tokens=100, output_tokens=200),
        elapsed_s=0.0,
    )


def _bench_overhead(tmp: pathlib.Path) -> dict:
    gens = [_synthetic_generation(i) for i in range(N_RECORDS)]
    keys = [gen.key for gen in gens]
    with InProcessServer(tmp / "overhead") as server:
        with open_store(server.url(), retry=RETRY) as seed:
            seed.put_generations(gens)

        bare_s = replicated_s = float("inf")
        for _ in range(N_ROUNDS):
            # alternate fresh clients so pool warm-up hits both equally
            with open_store(server.url(), retry=RETRY) as bare:
                started = time.perf_counter()
                found = bare.get_generations(keys)
                bare_s = min(bare_s, time.perf_counter() - started)
            assert len(found) == N_RECORDS
            # a one-replica set: same wire path plus the armed breaker
            with ReplicatedRunStore(
                server.url(), [server.address()], retry=RETRY
            ) as wrapped:
                started = time.perf_counter()
                found = wrapped.get_generations(keys)
                replicated_s = min(
                    replicated_s, time.perf_counter() - started
                )
            assert len(found) == N_RECORDS

    bare_ms = bare_s * 1000 / N_RECORDS
    replicated_ms = replicated_s * 1000 / N_RECORDS
    return {
        "scenario": "overhead",
        "n_records": N_RECORDS,
        "bare_get_ms_per_record": bare_ms,
        "replicated_get_ms_per_record": replicated_ms,
        "breaker_over_remote": replicated_ms / max(bare_ms, 1e-9),
    }


def _bench_failover(tmp: pathlib.Path) -> dict:
    gens = [_synthetic_generation(i) for i in range(N_RECORDS)]
    keys = [gen.key for gen in gens]
    probe = keys[:8]
    primary = InProcessServer(tmp / "replica-a")
    secondary = InProcessServer(tmp / "replica-b")
    try:
        url = f"{primary.url()},{secondary.url()}"
        with open_store(url, retry=RETRY) as store:
            store.put_generations(gens)

            healthy_s = float("inf")
            for _ in range(N_ROUNDS):
                started = time.perf_counter()
                assert len(store.get_generations(probe)) == len(probe)
                healthy_s = min(healthy_s, time.perf_counter() - started)

            primary.stop()
            # one-off: stale sockets fail, retries cycle, breaker trips
            started = time.perf_counter()
            assert len(store.get_generations(probe)) == len(probe)
            failover_s = time.perf_counter() - started

            # steady state: the open breaker skips the corpse entirely
            started = time.perf_counter()
            for _ in range(N_OPEN_READS):
                assert len(store.get_generations(probe)) == len(probe)
            open_s = (time.perf_counter() - started) / N_OPEN_READS
    finally:
        primary.stop()
        secondary.stop()

    healthy_ms = healthy_s * 1000
    open_ms = open_s * 1000
    return {
        "scenario": "failover",
        "n_records": len(probe),
        "healthy_ms_per_read": healthy_ms,
        "failover_ms": failover_s * 1000,
        "open_breaker_ms_per_read": open_ms,
        "open_breaker_over_healthy": open_ms / max(healthy_ms, 1e-9),
    }


def _merge_results(results: list[dict]) -> None:
    """Attach the resilience section to BENCH_metrics.json."""
    payload: dict = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["resilience"] = {
        "benchmark": "resilience",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def bench_resilience(report):
    lines = [
        f"resilience layer ({'smoke' if SMOKE else 'full'} mode, "
        f"{N_RECORDS} records)",
        "",
    ]
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-resilience-"))
    try:
        overhead = _bench_overhead(tmp)
        lines.append(
            f"overhead  replicated get "
            f"{overhead['replicated_get_ms_per_record']:.4f} ms/rec   bare "
            f"{overhead['bare_get_ms_per_record']:.4f} ms/rec "
            f"(x{overhead['breaker_over_remote']:.3f} armed-but-idle)"
        )
        failover = _bench_failover(tmp)
        lines.append(
            f"failover  healthy read {failover['healthy_ms_per_read']:.3f} ms"
            f"   first-after-death {failover['failover_ms']:.1f} ms   "
            f"open-breaker read {failover['open_breaker_ms_per_read']:.3f} ms"
            f" (x{failover['open_breaker_over_healthy']:.2f})"
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    results = [overhead, failover]
    _merge_results(results)
    lines += ["", f"[machine-readable results merged into {RESULTS_PATH}]"]
    report("resilience", "\n".join(lines))

    if not SMOKE:
        # smoke mode (CI) leaves the verdict to check_regression.py's
        # caps: shared runners add timing noise
        assert overhead["breaker_over_remote"] < 1.05, (
            "an armed-but-idle breaker should cost under 5% over the bare "
            f"remote path, got {overhead['breaker_over_remote']:.3f}x"
        )
        assert failover["open_breaker_over_healthy"] < 3.0, (
            "reads with the dead replica's breaker open should stay near "
            "the healthy-path cost, got "
            f"{failover['open_breaker_over_healthy']:.2f}x"
        )
