"""Durable run store — record I/O, warm-vs-cold sweeps, GC.

Times the persistence layer on two scenarios:

* ``records`` — raw segment throughput, batched write vs. batched read
  (the runtime's production paths: the runner writes via ``put_many``
  and reads via ``get_many``): batched ``put`` of N synthetic
  generations, then a batched ``get`` from a *fresh* store instance
  (offset-sorted positioned preads), then a GC pass over the doubled
  (duplicated) store.  In full mode the offset-indexed read path must
  hold ``get_over_put <= 1.2`` (it used to be ~3.6× before the
  rewrite, when every get re-opened its segment and re-scanned);
* ``persist_read`` — the read path on its own: per-record ``get`` with
  the decoded-payload LRU disabled (every read hits disk), batched
  ``get_many`` (reads sorted by segment offset), and warm-LRU re-reads;
* ``mmap_read`` — the zero-copy mmap read path (memoryview slices of a
  persistently mapped segment) against the ``os.pread`` fallback, on
  identical batched ``get_many`` sweeps; mmap must not lose to pread;
* ``sweep`` — the end-to-end promise: a small Table-1 configuration
  sweep run cold against an empty store, then re-run warm from a fresh
  store handle (as a new process would), asserting the warm pass
  performed **zero** generations via its recorded manifest.

Timings land in ``benchmarks/output/persist.txt`` (human) and are
*merged* into ``BENCH_metrics.json`` under the ``persist`` key (machine),
next to the metrics-hot-path numbers; the CI regression gate compares
the hardware-normalized ratios (warm/cold, get/put) against the
committed baseline.  Run ``bench_metrics_hotpath.py`` first and this
bench after it (the CI order): the metrics bench rewrites the file
without any previous ``persist`` section, so stale persist timings can
never masquerade as fresh ones.  Set ``REPRO_BENCH_SMOKE=1`` (CI does)
for a smaller record count.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.core.experiments import run_configuration
from repro.llm.types import ModelUsage
from repro.persist import RunStore
from repro.runtime.units import Generation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_metrics.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_RECORDS = 256 if SMOKE else 2048
SWEEP = dict(
    models=["o3", "llama-3.3-70b", "claude-sonnet-4"],
    systems=["adios2", "wilkins", "henson"],
    epochs=2,
)


def _synthetic_generation(i: int) -> Generation:
    return Generation(
        key=f"{i:064x}",
        model="sim/bench",
        completion=f"synthetic completion {i} " + "x" * 160,
        usage=ModelUsage(input_tokens=100, output_tokens=200),
        elapsed_s=0.0,
    )


def _bench_records(root: pathlib.Path) -> dict:
    gens = [_synthetic_generation(i) for i in range(N_RECORDS)]

    store = RunStore(root)
    started = time.perf_counter()
    store.put_generations(gens)
    put_s = time.perf_counter() - started
    store.close()

    fresh = RunStore(root)  # new handle: index rebuilt, records read on demand
    started = time.perf_counter()
    found = fresh.get_generations([gen.key for gen in gens])
    get_s = time.perf_counter() - started
    assert len(found) == N_RECORDS

    fresh.put_generations(gens)  # duplicate every record for GC to reclaim
    started = time.perf_counter()
    gc_stats = fresh.gc()
    gc_s = time.perf_counter() - started
    assert gc_stats.stale_dropped == N_RECORDS
    assert fresh.verify().clean

    put_ms = put_s * 1000 / N_RECORDS
    get_ms = get_s * 1000 / N_RECORDS
    return {
        "scenario": "records",
        "n_records": N_RECORDS,
        "put_ms_per_record": put_ms,
        "get_ms_per_record": get_ms,
        "get_over_put": get_ms / max(put_ms, 1e-9),
        "gc_ms": gc_s * 1000,
    }


def _bench_persist_read(root: pathlib.Path) -> dict:
    gens = [_synthetic_generation(i) for i in range(N_RECORDS)]
    with RunStore(root) as store:
        store.put_generations(gens)

    # cold reads, LRU off: every get is one positioned pread + checksum
    cold = RunStore(root, read_cache_entries=0)
    started = time.perf_counter()
    for gen in gens:
        assert cold.get_generation(gen.key) is not None
    get_s = time.perf_counter() - started
    assert cold.stats().read_lru_hits == 0

    # batched get_many from a fresh handle: reads sorted by offset
    batched = RunStore(root, read_cache_entries=0)
    started = time.perf_counter()
    found = batched.get_generations([gen.key for gen in gens])
    get_many_s = time.perf_counter() - started
    assert len(found) == N_RECORDS

    # warm LRU: second pass over an LRU sized to hold everything
    warm = RunStore(root, read_cache_entries=N_RECORDS)
    for gen in gens:
        warm.get_generation(gen.key)
    started = time.perf_counter()
    for gen in gens:
        assert warm.get_generation(gen.key) is not None
    warm_s = time.perf_counter() - started
    assert warm.stats().read_lru_hits == N_RECORDS

    get_ms = get_s * 1000 / N_RECORDS
    get_many_ms = get_many_s * 1000 / N_RECORDS
    warm_ms = warm_s * 1000 / N_RECORDS
    return {
        "scenario": "persist_read",
        "n_records": N_RECORDS,
        "get_ms_per_record": get_ms,
        "get_many_ms_per_record": get_many_ms,
        "warm_lru_ms_per_record": warm_ms,
        "get_many_over_get": get_many_ms / max(get_ms, 1e-9),
        "warm_lru_over_get": warm_ms / max(get_ms, 1e-9),
    }


def _bench_mmap_read(root: pathlib.Path) -> dict:
    gens = [_synthetic_generation(i) for i in range(N_RECORDS)]
    with RunStore(root) as store:
        store.put_generations(gens)
    keys = [gen.key for gen in gens]

    def timed_get_many(use_mmap: bool) -> float:
        # best-of-3: one positioned-read sweep per pass, LRU off so every
        # pass really reads (and checksums) every record from the segment
        best = float("inf")
        for _ in range(3):
            store = RunStore(root, read_cache_entries=0, use_mmap=use_mmap)
            started = time.perf_counter()
            found = store.get_generations(keys)
            best = min(best, time.perf_counter() - started)
            assert len(found) == N_RECORDS
            store.close()
        return best

    pread_s = timed_get_many(use_mmap=False)
    mmap_s = timed_get_many(use_mmap=True)
    mmap_ms = mmap_s * 1000 / N_RECORDS
    pread_ms = pread_s * 1000 / N_RECORDS
    return {
        "scenario": "mmap_read",
        "n_records": N_RECORDS,
        "mmap_get_many_ms_per_record": mmap_ms,
        "pread_get_many_ms_per_record": pread_ms,
        "mmap_over_pread": mmap_ms / max(pread_ms, 1e-9),
    }


def _bench_sweep(root: pathlib.Path) -> dict:
    started = time.perf_counter()
    with RunStore(root) as store:
        run_configuration(**SWEEP, store=store)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    with RunStore(root) as store:
        run_configuration(**SWEEP, store=store)
        manifest = store.latest_manifest()
    warm_s = time.perf_counter() - started
    assert manifest.stats.generated == 0, "warm store pass must not generate"
    assert manifest.stats.scores_computed == 0, "warm store pass must not score"

    return {
        "scenario": "sweep",
        "units": manifest.stats.total_units,
        "cold_ms": cold_s * 1000,
        "warm_ms": warm_s * 1000,
        "warm_over_cold": warm_s / max(cold_s, 1e-9),
    }


def _merge_results(results: list[dict]) -> None:
    """Attach the persist section to BENCH_metrics.json, keeping the rest."""
    payload: dict = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["persist"] = {
        "benchmark": "persist",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def bench_persist(report):
    results = []
    lines = [
        f"durable run store ({'smoke' if SMOKE else 'full'} mode, "
        f"{N_RECORDS} records)",
        "",
    ]

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-persist-"))
    try:
        records = _bench_records(tmp / "records")
        results.append(records)
        lines.append(
            f"records   put {records['put_ms_per_record']:.3f} ms/rec   "
            f"get {records['get_ms_per_record']:.3f} ms/rec "
            f"(x{records['get_over_put']:.2f})   "
            f"gc {records['gc_ms']:.1f} ms for {2 * N_RECORDS} records"
        )

        reads = _bench_persist_read(tmp / "reads")
        results.append(reads)
        lines.append(
            f"reads     get {reads['get_ms_per_record']:.4f} ms/rec   "
            f"get_many {reads['get_many_ms_per_record']:.4f} ms/rec "
            f"(x{reads['get_many_over_get']:.2f})   "
            f"warm-LRU {reads['warm_lru_ms_per_record']:.4f} ms/rec "
            f"(x{reads['warm_lru_over_get']:.2f})"
        )

        mmap_read = _bench_mmap_read(tmp / "mmap")
        results.append(mmap_read)
        lines.append(
            f"mmap      get_many {mmap_read['mmap_get_many_ms_per_record']:.4f} "
            f"ms/rec   pread {mmap_read['pread_get_many_ms_per_record']:.4f} "
            f"ms/rec (x{mmap_read['mmap_over_pread']:.2f})"
        )

        sweep = _bench_sweep(tmp / "sweep")
        results.append(sweep)
        lines.append(
            f"sweep     cold {sweep['cold_ms']:.1f} ms   warm "
            f"{sweep['warm_ms']:.1f} ms (x{sweep['warm_over_cold']:.2f}) "
            f"over {sweep['units']} units — warm pass: zero generations, "
            "zero scores (asserted via manifest)"
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    _merge_results(results)
    lines += ["", f"[machine-readable results merged into {RESULTS_PATH}]"]
    report("persist", "\n".join(lines))

    if not SMOKE:
        # smoke mode (CI) is report-only: shared runners add timing noise
        assert sweep["warm_over_cold"] < 1.0, (
            "a warm store pass (zero generations, zero scoring) should beat "
            f"the cold pass, got {sweep['warm_over_cold']:.2f}x"
        )
        assert records["get_over_put"] <= 1.2, (
            "an offset-indexed get (one pread + checksum) should cost no "
            "more than 1.2x an amortized put, got "
            f"{records['get_over_put']:.2f}x"
        )
        assert reads["warm_lru_over_get"] < 1.0, (
            "a warm-LRU read should beat a disk read, got "
            f"{reads['warm_lru_over_get']:.2f}x"
        )
        assert mmap_read["mmap_over_pread"] <= 1.0, (
            "zero-copy mmap get_many should not lose to the pread path, "
            f"got {mmap_read['mmap_over_pread']:.2f}x"
        )
