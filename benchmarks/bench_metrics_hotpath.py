"""Metrics hot path — quality curves and per-trial recalibration.

Times the two operations that dominate cold-cache table reproduction on
the real Wilkins and Henson artifacts:

* ``quality_curve`` — the full BLEU(k) scan every calibrated cell pays
  once (incremental prefixes + compiled reference vs. the naive
  rebuild-every-prefix / re-tokenize-every-call construction);
* ``local_recalibrate`` — the windowed depth search every jittery trial
  pays per epoch;
* ``metrics_kernels`` (``bench_metrics_kernels``) — per-hypothesis
  scoring itself: the compiled Counter path vs the vectorized numpy
  kernels vs whole-group ``score_batch``, on corrupted variants of the
  real artifacts.

All fast paths are asserted bit-identical to their reference
implementations while being timed.  Results are written human-readably
to ``benchmarks/output/metrics_hotpath.txt`` /
``metrics_kernels.txt`` and machine-readably to ``BENCH_metrics.json``
at the repo root (the kernels section merged under the ``kernels``
key), establishing the performance trajectory PR-over-PR.  Set
``REPRO_BENCH_SMOKE=1`` (CI does) to run on a truncated artifact with
fewer trials.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.assets import reference_config
from repro.llm.calibration import QualityCurve, calibrate, local_recalibrate
from repro.llm.corruption import apply_ops, build_ops, shuffle_within_bands
from repro.llm.profiles import ALL_PROFILES
from repro.metrics import bleu
from repro.metrics.compiled import compile_reference
from repro.metrics.tokenizers import _tokenize_segment, tokenize_13a_cached
from repro.utils.rng import rng_for

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_metrics.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SYSTEMS = ("wilkins",) if SMOKE else ("wilkins", "henson")
RECAL_TRIALS = 4 if SMOKE else 16
TARGET_BLEU = 70.0


def _naive_quality_curve(reference: str, ops) -> list[float]:
    """The pre-engine construction: every prefix from scratch, plain bleu."""
    return [bleu(apply_ops(reference, ops, k), reference) for k in range(len(ops) + 1)]


def _naive_local_recalibrate(reference: str, ops, target: float, *, center: int,
                             window: int = 8) -> int:
    """The pre-engine windowed search (scratch prefixes, plain bleu)."""
    lo, hi = max(0, center - window), min(len(ops), center + window)
    best_k, best_err = center, float("inf")
    for k in range(lo, hi + 1):
        err = abs(bleu(apply_ops(reference, ops, k), reference) - target)
        if err < best_err:
            best_k, best_err = k, err
    if best_err > 6.0:
        for k, score in enumerate(_naive_quality_curve(reference, ops)):
            err = abs(score - target)
            if err < best_err:
                best_k, best_err = k, err
    return best_k


def _clear_metric_caches() -> None:
    """Start each timed section cold.

    The shared tokenizer/compiled-reference LRUs would otherwise let the
    section timed second ride on the section timed first.  Note the
    naive baseline still *warms* these caches during its own run (the
    true pre-engine code had none at all), so the reported speedups are
    a lower bound on the improvement over the pre-PR hot path.
    """
    tokenize_13a_cached.cache_clear()
    _tokenize_segment.cache_clear()
    compile_reference.cache_clear()


def _artifact(system: str) -> str:
    reference = reference_config(system)
    if SMOKE:
        reference = "\n".join(reference.split("\n")[:12])
    return reference


def bench_metrics_hotpath(report):
    profile = ALL_PROFILES["o3"]()
    results = []
    lines = [
        "metrics hot path — quality_curve + local_recalibrate "
        f"({'smoke' if SMOKE else 'full'} mode, {RECAL_TRIALS} recal trials)",
        "",
        f"{'artifact':<10} {'ops':>5} {'curve':>10} {'naive curve':>12} "
        f"{'recal/trial':>12} {'naive recal':>12} {'speedup':>8}",
    ]
    for system in SYSTEMS:
        reference = _artifact(system)
        knowledge = profile.knowledge_for("configuration", system)
        ops = build_ops(reference, knowledge, seed_labels=("bench", system))

        _clear_metric_caches()
        started = time.perf_counter()
        fast_curve = QualityCurve(reference, ops).scores()
        curve_s = time.perf_counter() - started

        _clear_metric_caches()
        started = time.perf_counter()
        naive_curve = _naive_quality_curve(reference, ops)
        naive_curve_s = time.perf_counter() - started
        assert fast_curve == naive_curve, f"{system}: curve mismatch"

        center = calibrate(reference, ops, TARGET_BLEU, tolerance=50.0).k

        shuffles = [
            shuffle_within_bands(ops, rng_for("bench-recal", system, t))
            for t in range(RECAL_TRIALS)
        ]
        _clear_metric_caches()
        started = time.perf_counter()
        fast_ks = [
            local_recalibrate(reference, epoch_ops, TARGET_BLEU, center=center,
                              curve=QualityCurve(reference, epoch_ops))
            for epoch_ops in shuffles
        ]
        recal_s = (time.perf_counter() - started) / RECAL_TRIALS

        _clear_metric_caches()
        started = time.perf_counter()
        naive_ks = [
            _naive_local_recalibrate(reference, epoch_ops, TARGET_BLEU, center=center)
            for epoch_ops in shuffles
        ]
        naive_recal_s = (time.perf_counter() - started) / RECAL_TRIALS
        assert fast_ks == naive_ks, f"{system}: recalibration depth mismatch"

        speedup = (naive_curve_s + naive_recal_s) / max(curve_s + recal_s, 1e-9)
        results.append(
            {
                "artifact": system,
                "n_ops": len(ops),
                "curve_depths": len(fast_curve),
                "quality_curve_ms": curve_s * 1000,
                "naive_quality_curve_ms": naive_curve_s * 1000,
                "local_recalibrate_ms_per_trial": recal_s * 1000,
                "naive_local_recalibrate_ms_per_trial": naive_recal_s * 1000,
                "combined_speedup": speedup,
            }
        )
        lines.append(
            f"{system:<10} {len(ops):>5} {curve_s * 1000:>8.1f} ms "
            f"{naive_curve_s * 1000:>9.1f} ms {recal_s * 1000:>9.2f} ms "
            f"{naive_recal_s * 1000:>9.2f} ms {speedup:>7.1f}x"
        )

    payload = {
        "benchmark": "metrics_hotpath",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "recal_trials": RECAL_TRIALS,
        "target_bleu": TARGET_BLEU,
        "results": results,
    }
    # deliberately NOT carrying any previous "persist" section forward:
    # the file must only ever describe *this* session's runs, so run this
    # bench first and bench_persist.py after it (the CI order) — the
    # regression gate fails loudly on a missing section rather than
    # silently comparing stale timings relabelled as fresh.
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    lines += ["", f"[machine-readable results in {RESULTS_PATH}]"]
    report("metrics_hotpath", "\n".join(lines))

    if not SMOKE:
        # smoke mode (CI) is report-only: the truncated artifact shrinks the
        # O(N²)-vs-O(N) gap and shared runners add timing noise, so a hard
        # wall-clock assertion there would flake
        for entry in results:
            assert entry["combined_speedup"] >= 3.0, (
                f"{entry['artifact']}: compiled metrics engine should be >= 3x "
                f"faster than the naive hot path, got {entry['combined_speedup']:.1f}x"
            )


# enough hypotheses to amortize the one-time kernel interning the way a
# real sweep does (hundreds of completions scored per reference cell)
N_HYPOTHESES = 24 if SMOKE else 256
KERNEL_REPEATS = 2 if SMOKE else 3


def _hypotheses(reference: str, system: str, n: int) -> list[str]:
    """Corrupted variants of the reference at evenly spread depths."""
    profile = ALL_PROFILES["o3"]()
    knowledge = profile.knowledge_for("configuration", system)
    ops = build_ops(reference, knowledge, seed_labels=("bench-kernels", system))
    depths = [round(i * len(ops) / max(n - 1, 1)) for i in range(n)]
    return [apply_ops(reference, ops, k) for k in depths]


def _best_of(repeats: int, fn) -> tuple[float, object]:
    """(best wall seconds, last result) over ``repeats`` timed calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def bench_metrics_kernels(report):
    """Vectorized kernels vs compiled scoring, single vs batched."""
    from repro.core.scorers import CodeSimilarityScorer
    from repro.metrics.compiled import bleu_compiled, chrf_compiled
    from repro.metrics.kernels import bleu_kernel, chrf_kernel, kernels_enabled

    results = []
    lines = [
        "metric kernels — compiled vs vectorized vs batched "
        f"({'smoke' if SMOKE else 'full'} mode, {N_HYPOTHESES} hypotheses, "
        f"kernels {'on' if kernels_enabled() else 'OFF'})",
        "",
        f"{'artifact':<10} {'compiled':>12} {'vectorized':>12} {'batched':>12} "
        f"{'vec speedup':>12} {'batch speedup':>14}",
    ]
    scorer = CodeSimilarityScorer()
    for system in SYSTEMS:
        reference = _artifact(system)
        hyps = _hypotheses(reference, system, N_HYPOTHESES)

        # reference-side preparation is one-time by design on both paths
        # (counters for compiled, interned vocabularies for the kernels)
        # and is amortized over hundreds of hypotheses in a real sweep —
        # warm it outside the timed region so the comparison is strictly
        # per-hypothesis
        _clear_metric_caches()
        ref = compile_reference(reference)
        bleu_compiled(hyps[0], ref), chrf_compiled(hyps[0], ref)
        bleu_kernel(hyps[0], ref), chrf_kernel(hyps[0], ref)

        def compiled_pass():
            return [
                (bleu_compiled(hyp, ref), chrf_compiled(hyp, ref)) for hyp in hyps
            ]

        def vectorized_pass():
            return [(bleu_kernel(hyp, ref), chrf_kernel(hyp, ref)) for hyp in hyps]

        def batch_pass():
            scores = scorer.score_batch(hyps, reference)
            return [(score["bleu"], score["chrf"]) for score in scores]

        compiled_s, compiled_scores = _best_of(KERNEL_REPEATS, compiled_pass)
        vector_s, vector_scores = _best_of(KERNEL_REPEATS, vectorized_pass)
        batch_s, batch_scores = _best_of(KERNEL_REPEATS, batch_pass)
        assert vector_scores == compiled_scores, f"{system}: kernel mismatch"
        assert batch_scores == compiled_scores, f"{system}: batch mismatch"

        compiled_ms = compiled_s * 1000 / N_HYPOTHESES
        vector_ms = vector_s * 1000 / N_HYPOTHESES
        batch_ms = batch_s * 1000 / N_HYPOTHESES
        results.append(
            {
                "artifact": system,
                "scenario": system,
                "n_hypotheses": N_HYPOTHESES,
                "compiled_ms_per_hyp": compiled_ms,
                "vectorized_ms_per_hyp": vector_ms,
                "batch_ms_per_hyp": batch_ms,
                "vectorized_over_compiled": vector_ms / max(compiled_ms, 1e-9),
                "batch_over_compiled": batch_ms / max(compiled_ms, 1e-9),
                "speedup_vectorized": compiled_ms / max(vector_ms, 1e-9),
                "speedup_batch": compiled_ms / max(batch_ms, 1e-9),
            }
        )
        entry = results[-1]
        lines.append(
            f"{system:<10} {compiled_ms:>9.3f} ms {vector_ms:>9.3f} ms "
            f"{batch_ms:>9.3f} ms {entry['speedup_vectorized']:>11.2f}x "
            f"{entry['speedup_batch']:>13.2f}x"
        )

    payload: dict = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["kernels"] = {
        "benchmark": "metrics_kernels",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    lines += ["", f"[machine-readable results merged into {RESULTS_PATH}]"]
    report("metrics_kernels", "\n".join(lines))

    if not SMOKE and kernels_enabled():
        # smoke mode (CI) is gated by check_regression.py's absolute caps
        # instead: the truncated artifact shrinks the vectorization win
        for entry in results:
            assert entry["speedup_batch"] >= 2.0, (
                f"{entry['artifact']}: batched kernel scoring should be >= 2x "
                "faster per hypothesis than the compiled path, got "
                f"{entry['speedup_batch']:.2f}x"
            )
