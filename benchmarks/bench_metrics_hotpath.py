"""Metrics hot path — quality curves and per-trial recalibration.

Times the two operations that dominate cold-cache table reproduction on
the real Wilkins and Henson artifacts:

* ``quality_curve`` — the full BLEU(k) scan every calibrated cell pays
  once (incremental prefixes + compiled reference vs. the naive
  rebuild-every-prefix / re-tokenize-every-call construction);
* ``local_recalibrate`` — the windowed depth search every jittery trial
  pays per epoch.

Both fast paths are asserted bit-identical to the naive reference
implementations while being timed.  Results are written human-readably
to ``benchmarks/output/metrics_hotpath.txt`` and machine-readably to
``BENCH_metrics.json`` at the repo root, establishing the performance
trajectory PR-over-PR.  Set ``REPRO_BENCH_SMOKE=1`` (CI does) to run on
a truncated artifact with fewer trials.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.assets import reference_config
from repro.llm.calibration import QualityCurve, calibrate, local_recalibrate
from repro.llm.corruption import apply_ops, build_ops, shuffle_within_bands
from repro.llm.profiles import ALL_PROFILES
from repro.metrics import bleu
from repro.metrics.compiled import compile_reference
from repro.metrics.tokenizers import _tokenize_segment, tokenize_13a_cached
from repro.utils.rng import rng_for

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_metrics.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SYSTEMS = ("wilkins",) if SMOKE else ("wilkins", "henson")
RECAL_TRIALS = 4 if SMOKE else 16
TARGET_BLEU = 70.0


def _naive_quality_curve(reference: str, ops) -> list[float]:
    """The pre-engine construction: every prefix from scratch, plain bleu."""
    return [bleu(apply_ops(reference, ops, k), reference) for k in range(len(ops) + 1)]


def _naive_local_recalibrate(reference: str, ops, target: float, *, center: int,
                             window: int = 8) -> int:
    """The pre-engine windowed search (scratch prefixes, plain bleu)."""
    lo, hi = max(0, center - window), min(len(ops), center + window)
    best_k, best_err = center, float("inf")
    for k in range(lo, hi + 1):
        err = abs(bleu(apply_ops(reference, ops, k), reference) - target)
        if err < best_err:
            best_k, best_err = k, err
    if best_err > 6.0:
        for k, score in enumerate(_naive_quality_curve(reference, ops)):
            err = abs(score - target)
            if err < best_err:
                best_k, best_err = k, err
    return best_k


def _clear_metric_caches() -> None:
    """Start each timed section cold.

    The shared tokenizer/compiled-reference LRUs would otherwise let the
    section timed second ride on the section timed first.  Note the
    naive baseline still *warms* these caches during its own run (the
    true pre-engine code had none at all), so the reported speedups are
    a lower bound on the improvement over the pre-PR hot path.
    """
    tokenize_13a_cached.cache_clear()
    _tokenize_segment.cache_clear()
    compile_reference.cache_clear()


def _artifact(system: str) -> str:
    reference = reference_config(system)
    if SMOKE:
        reference = "\n".join(reference.split("\n")[:12])
    return reference


def bench_metrics_hotpath(report):
    profile = ALL_PROFILES["o3"]()
    results = []
    lines = [
        "metrics hot path — quality_curve + local_recalibrate "
        f"({'smoke' if SMOKE else 'full'} mode, {RECAL_TRIALS} recal trials)",
        "",
        f"{'artifact':<10} {'ops':>5} {'curve':>10} {'naive curve':>12} "
        f"{'recal/trial':>12} {'naive recal':>12} {'speedup':>8}",
    ]
    for system in SYSTEMS:
        reference = _artifact(system)
        knowledge = profile.knowledge_for("configuration", system)
        ops = build_ops(reference, knowledge, seed_labels=("bench", system))

        _clear_metric_caches()
        started = time.perf_counter()
        fast_curve = QualityCurve(reference, ops).scores()
        curve_s = time.perf_counter() - started

        _clear_metric_caches()
        started = time.perf_counter()
        naive_curve = _naive_quality_curve(reference, ops)
        naive_curve_s = time.perf_counter() - started
        assert fast_curve == naive_curve, f"{system}: curve mismatch"

        center = calibrate(reference, ops, TARGET_BLEU, tolerance=50.0).k

        shuffles = [
            shuffle_within_bands(ops, rng_for("bench-recal", system, t))
            for t in range(RECAL_TRIALS)
        ]
        _clear_metric_caches()
        started = time.perf_counter()
        fast_ks = [
            local_recalibrate(reference, epoch_ops, TARGET_BLEU, center=center,
                              curve=QualityCurve(reference, epoch_ops))
            for epoch_ops in shuffles
        ]
        recal_s = (time.perf_counter() - started) / RECAL_TRIALS

        _clear_metric_caches()
        started = time.perf_counter()
        naive_ks = [
            _naive_local_recalibrate(reference, epoch_ops, TARGET_BLEU, center=center)
            for epoch_ops in shuffles
        ]
        naive_recal_s = (time.perf_counter() - started) / RECAL_TRIALS
        assert fast_ks == naive_ks, f"{system}: recalibration depth mismatch"

        speedup = (naive_curve_s + naive_recal_s) / max(curve_s + recal_s, 1e-9)
        results.append(
            {
                "artifact": system,
                "n_ops": len(ops),
                "curve_depths": len(fast_curve),
                "quality_curve_ms": curve_s * 1000,
                "naive_quality_curve_ms": naive_curve_s * 1000,
                "local_recalibrate_ms_per_trial": recal_s * 1000,
                "naive_local_recalibrate_ms_per_trial": naive_recal_s * 1000,
                "combined_speedup": speedup,
            }
        )
        lines.append(
            f"{system:<10} {len(ops):>5} {curve_s * 1000:>8.1f} ms "
            f"{naive_curve_s * 1000:>9.1f} ms {recal_s * 1000:>9.2f} ms "
            f"{naive_recal_s * 1000:>9.2f} ms {speedup:>7.1f}x"
        )

    payload = {
        "benchmark": "metrics_hotpath",
        "smoke": SMOKE,
        "unix_time": time.time(),
        "recal_trials": RECAL_TRIALS,
        "target_bleu": TARGET_BLEU,
        "results": results,
    }
    # deliberately NOT carrying any previous "persist" section forward:
    # the file must only ever describe *this* session's runs, so run this
    # bench first and bench_persist.py after it (the CI order) — the
    # regression gate fails loudly on a missing section rather than
    # silently comparing stale timings relabelled as fresh.
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    lines += ["", f"[machine-readable results in {RESULTS_PATH}]"]
    report("metrics_hotpath", "\n".join(lines))

    if not SMOKE:
        # smoke mode (CI) is report-only: the truncated artifact shrinks the
        # O(N²)-vs-O(N) gap and shared runners add timing noise, so a hard
        # wall-clock assertion there would flake
        for entry in results:
            assert entry["combined_speedup"] >= 3.0, (
                f"{entry['artifact']}: compiled metrics engine should be >= 3x "
                f"faster than the naive hot path, got {entry['combined_speedup']:.1f}x"
            )
